"""The daemon's request brain: memo, coalescing, batching, dispatch.

:class:`ServeApp` owns the warm state (one
:class:`~repro.api.dispatch.QueryContext`, optionally backed by the
disk :class:`~repro.core.cache.ArtifactCache`) and answers decoded
query payloads.  The serving path, fastest first:

1. **response memo** -- an LRU of fully serialized response bytes
   keyed by spec key; a hit never leaves the event loop;
2. **coalescing** -- an in-flight map on the same key, so concurrent
   identical queries share one computation
   (:mod:`repro.serve.coalesce`);
3. **batching** -- fleet-family leaders wait out a few-millisecond
   window and execute per cohort group against one shared engine
   (:mod:`repro.serve.batch`);
4. **dispatch** -- everything bottoms out in
   :func:`repro.api.execute`, disk cache included.

Computation never runs on the loop itself.  With ``workers=0`` engine
executions ride the event loop's default thread-pool executor; with
``workers=N`` they route to the pre-forked
:class:`~repro.serve.workers.EngineWorkerPool` (sticky spec-key
routing, zero-copy warm state, bit-identical payloads), while memo
hits, validation errors and ``/healthz``/``/stats`` stay on the loop
either way.

Under load the path is guarded by the :mod:`repro.serve.resilience`
layer: memo hits always succeed, but a computation must pass the
circuit breaker (``503`` + ``Retry-After`` while its spec key is
tripped) and admission control (bounded in-flight slots plus a bounded
accept queue; saturation sheds with ``503``).  A per-request deadline
(``deadline_ms``) bounds every wait and answers ``504`` on expiry, and
``begin_drain()`` flips the app to *draining*: new queries are refused
while everything already admitted runs to completion.
"""

from __future__ import annotations

import asyncio
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.dispatch import QueryContext, execute
from repro.api.requests import (
    FLEET_FAMILIES,
    TRANSPORT_FIELDS,
    QueryRequest,
    request_from_dict,
    spec_suffix,
)
from repro.api.result import QueryResult
from repro.core import faults
from repro.core.cache import ENGINE_VERSION, ArtifactCache, cache_key
from repro.core.resilience import DeadlineExceeded, TransientError
from repro.serve.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    ServeLimits,
)

#: Headers attached to every load-shedding (``503``) response.
_NO_HEADERS: Dict[str, str] = {}


@dataclass
class ServeStats:
    """Counters for one daemon lifetime."""

    queries: int = 0
    memo_hits: int = 0
    coalesced: int = 0
    computations: int = 0
    disk_hits: int = 0
    errors: int = 0
    admitted: int = 0
    shed: int = 0
    timeouts: int = 0
    breaker_fastfail: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, int]:
        """The counters as a flat JSON-ready dict."""
        payload = {
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "coalesced": self.coalesced,
            "computations": self.computations,
            "disk_hits": self.disk_hits,
            "errors": self.errors,
            "admitted": self.admitted,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "breaker_fastfail": self.breaker_fastfail,
        }
        payload.update(self.extra)
        return payload


class ServeApp:
    """Answer query payloads with memoization, coalescing and batching."""

    def __init__(
        self,
        seed: int = 2016,
        cache: Optional[ArtifactCache] = None,
        memo_size: int = 4096,
        memo_bytes: int = 64 * 1024 * 1024,
        window_s: float = 0.002,
        limits: Optional[ServeLimits] = None,
        workers: int = 0,
    ) -> None:
        from repro.serve.batch import BatchWindow
        from repro.serve.coalesce import Coalescer

        if memo_bytes < 0:
            raise ValueError(f"memo_bytes must be >= 0, got {memo_bytes}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.seed = seed
        self.context = QueryContext(cache=cache)
        self.stats = ServeStats()
        self.memo_size = memo_size
        self.memo_bytes = memo_bytes
        self.limits = limits if limits is not None else ServeLimits()
        self._memo: "OrderedDict[str, bytes]" = OrderedDict()
        self._memo_total = 0
        self.workers = workers
        self._pool = None
        if workers > 0:
            from repro.serve.workers import EngineWorkerPool

            self._pool = EngineWorkerPool(
                self.context, seed=seed, size=workers
            )
        self._fingerprints: Dict[int, str] = {}
        self._coalescer = Coalescer()
        self._batch = BatchWindow(
            self._execute_group_pooled if self._pool is not None
            else self._execute_group,
            QueryContext.fleet_key,
            window_s,
        )
        self._admission = AdmissionController(
            self.limits.max_inflight, self.limits.max_queue
        )
        self._breaker = CircuitBreaker(
            self.limits.breaker_failures, self.limits.breaker_cooldown_s
        )
        self._state = "serving"
        self._in_system = 0
        # created lazily on the serving loop (see AdmissionController)
        self._idle_event: Optional[asyncio.Event] = None

    # -- warm-up -----------------------------------------------------------------

    def warm(self) -> None:
        """Load the corpus, column store and fingerprint once, up front.

        With ``workers > 0`` this also forks the engine worker pool —
        after the corpus is warm, so every worker starts from the
        parent's built state (copy-on-write plus the zero-copy spilled
        matrices) instead of re-synthesizing its own.
        """
        corpus = self.context.corpus(self.seed)
        corpus.columns()
        self._fingerprints[self.seed] = corpus.fingerprint()
        if self._pool is not None:
            self._pool.start()

    def stop_workers(self, timeout_s: float = 5.0) -> None:
        """Stop the engine worker pool, if one is running (idempotent)."""
        if self._pool is not None:
            self._pool.stop(timeout_s)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """``serving`` or ``draining``."""
        return self._state

    @property
    def in_system(self) -> int:
        """Accepted queries not yet answered (queued or executing)."""
        return self._in_system

    def begin_drain(self) -> None:
        """Refuse new queries; everything already accepted runs on."""
        self._state = "draining"

    async def wait_idle(self, timeout_s: float) -> bool:
        """Await the in-system count reaching zero; False on timeout."""
        if self._in_system == 0:
            return True
        if self._idle_event is None:
            self._idle_event = asyncio.Event()
        if self._in_system == 0:  # settled while creating the event
            return True
        try:
            await asyncio.wait_for(self._idle_event.wait(), timeout_s)
        except asyncio.TimeoutError:
            return False
        return True

    def _enter_system(self) -> None:
        self._in_system += 1
        if self._idle_event is not None:
            self._idle_event.clear()

    def _leave_system(self) -> None:
        self._in_system -= 1
        if self._in_system <= 0 and self._idle_event is not None:
            self._idle_event.set()

    # -- serving -----------------------------------------------------------------

    async def handle_query(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """Answer one decoded ``/query`` body (header-free compatibility).

        Returns ``(http_status, response_bytes)``; the body is always a
        JSON document -- a :class:`~repro.api.result.QueryResult`
        envelope on success, an ``{"error": ...}`` object otherwise.
        """
        status, body, _headers = await self.handle(payload)
        return status, body

    async def handle(
        self,
        payload: Dict[str, Any],
        deadline_ms: Optional[object] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Answer one decoded ``/query`` body with response headers.

        ``deadline_ms`` (also accepted as a ``deadline_ms`` field in
        the payload; the header wins) bounds the whole exchange: on
        expiry the answer is ``504`` and no further engine work runs on
        this request's behalf.  Returns
        ``(http_status, response_bytes, extra_headers)``.
        """
        self.stats.queries += 1
        try:
            await faults.fire_async("serve.handler")
            payload = dict(payload)
            for transport_field in TRANSPORT_FIELDS:
                value = payload.pop(transport_field, None)
                if transport_field == "deadline_ms" and deadline_ms is None:
                    deadline_ms = value
            deadline = Deadline.from_ms(deadline_ms)
            if self._state != "serving":
                self.stats.shed += 1
                return (
                    503,
                    _error_body_named("daemon is draining"),
                    self._retry_after(self.limits.drain_s),
                )
            request = request_from_dict(payload)
            if not type(request).servable:
                raise ValueError(
                    f"family {type(request).family!r} is not servable; "
                    "run it through the CLI"
                )
            key = await self._spec_key(request)
            memo = self._memo_get(key)
            if memo is not None:
                self.stats.memo_hits += 1
                return 200, memo, _NO_HEADERS
            retry_in = self._breaker.check(key)
            if retry_in is not None:
                self.stats.breaker_fastfail += 1
                return (
                    503,
                    _error_body_named("spec is circuit-broken"),
                    self._retry_after(retry_in),
                )
            return await self._admit_and_compute(request, key, deadline)
        except DeadlineExceeded as exc:
            self.stats.timeouts += 1
            return 504, _error_body(exc), _NO_HEADERS
        except (ValueError, KeyError) as exc:
            self.stats.errors += 1
            return 400, _error_body(exc), _NO_HEADERS
        except TransientError as exc:
            # transient engine/handler failure: retryable, say so
            self.stats.errors += 1
            return 503, _error_body(exc), self._retry_after(
                self.limits.retry_after_s
            )
        except Exception as exc:
            self.stats.errors += 1
            return 500, _error_body(exc), _NO_HEADERS

    async def _admit_and_compute(
        self,
        request: QueryRequest,
        key: str,
        deadline: Optional[Deadline],
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """The guarded slow path: admission, coalescing, computation."""
        self._enter_system()
        try:
            if not await self._admission.try_acquire(deadline):
                # if this request was the breaker's half-open probe, it
                # just exited without a verdict: free the probe slot
                self._breaker.probe_aborted(key)
                self.stats.shed += 1
                return (
                    503,
                    _error_body_named("server saturated"),
                    self._retry_after(self.limits.retry_after_s),
                )
            try:
                self.stats.admitted += 1
                timeout_s: Optional[float] = None
                if deadline is not None:
                    timeout_s = deadline.remaining_s()
                body, shared = await self._coalescer.run(
                    key, lambda: self._compute(request, key), timeout_s
                )
                if shared:
                    self.stats.coalesced += 1
                return 200, body, _NO_HEADERS
            finally:
                self._admission.release()
        except DeadlineExceeded:
            # expired while queued or coalesced — no breaker verdict
            # was reached on this request's behalf (the flight, if any,
            # still reports its own); a probe must not stay armed
            self._breaker.probe_aborted(key)
            raise
        finally:
            self._leave_system()

    def _retry_after(self, seconds: float) -> Dict[str, str]:
        return {"Retry-After": str(max(1, math.ceil(seconds)))}

    async def _compute(self, request: QueryRequest, key: str) -> bytes:
        try:
            if type(request).family in FLEET_FAMILIES:
                result = await self._batch.submit(request)
            elif self._pool is not None:
                self.stats.computations += 1
                await faults.fire_async("serve.engine")
                result = await self._pool.submit(request, key)
            else:
                loop = asyncio.get_running_loop()
                self.stats.computations += 1
                result = await loop.run_in_executor(
                    None, self._engine_call, request
                )
        except asyncio.CancelledError:
            # abandoned flight, not a verdict on the spec — but it may
            # have been the half-open probe, so let the next request
            # re-probe instead of wedging the key open
            self._breaker.probe_aborted(key)
            raise
        except BaseException as exc:
            self._breaker.record_failure(key, exc)
            raise
        self._breaker.record_success(key)
        if result.provenance.cache_hit:
            self.stats.disk_hits += 1
        body = (result.to_json() + "\n").encode("utf-8")
        if type(request).cacheable and result.exit_code == 0:
            self._memo_put(key, body)
        return body

    def _engine_call(self, request: QueryRequest) -> QueryResult:
        """One engine execution (runs on the executor thread pool)."""
        faults.fire("serve.engine")
        return execute(request, self.context)

    def _execute_group(self, requests: List[QueryRequest]) -> List[QueryResult]:
        """One batch group: every request against the shared context."""
        self.stats.computations += len(requests)
        faults.fire("serve.engine")
        return [execute(request, self.context) for request in requests]

    async def _execute_group_pooled(
        self, requests: List[QueryRequest]
    ) -> List[QueryResult]:
        """One batch group on the worker pool, routed by cohort key.

        Cohort-sticky routing keeps each cohort's shared engine warm
        inside one worker, the same way spec-key routing keeps
        non-fleet caches warm.
        """
        self.stats.computations += len(requests)
        await faults.fire_async("serve.engine")
        route = repr(QueryContext.fleet_key(requests[0]))
        return await self._pool.submit_group(requests, route)

    # -- identity ----------------------------------------------------------------

    async def _spec_key(self, request: QueryRequest) -> str:
        """The cache-grade identity of a request (backend-independent)."""
        fingerprint = ""
        if type(request).needs_corpus:
            fingerprint = self._fingerprints.get(request.seed, "")
            if not fingerprint:
                loop = asyncio.get_running_loop()
                fingerprint = await loop.run_in_executor(
                    None,
                    lambda: self.context.corpus(request.seed).fingerprint(),
                )
                self._fingerprints[request.seed] = fingerprint
        return cache_key(fingerprint, spec_suffix(request), ENGINE_VERSION)

    # -- response memo -----------------------------------------------------------

    def _memo_get(self, key: str) -> Optional[bytes]:
        body = self._memo.get(key)
        if body is not None:
            self._memo.move_to_end(key)
        return body

    def _memo_put(self, key: str, body: bytes) -> None:
        previous = self._memo.get(key)
        if previous is not None:
            self._memo_total -= len(previous)
        self._memo[key] = body
        self._memo_total += len(body)
        self._memo.move_to_end(key)
        # bounded twice over: entry count AND total bytes — one
        # million-server fleet response must not pin unbounded memory
        # behind a small-looking entry cap.  A body larger than the
        # byte budget by itself is evicted immediately (never memoized).
        while self._memo and (
            len(self._memo) > self.memo_size
            or self._memo_total > self.memo_bytes
        ):
            _evicted_key, evicted = self._memo.popitem(last=False)
            self._memo_total -= len(evicted)

    # -- introspection -----------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats`` document."""
        self.stats.extra = {
            "batched": self._batch.batched,
            "batch_groups": self._batch.groups,
            "batch_pending": self._batch.pending,
            "memo_entries": len(self._memo),
            "memo_bytes": self._memo_total,
            "inflight": self._admission.active,
            "queued": self._admission.waiting,
            "in_system": self._in_system,
            "coalescer_entries": len(self._coalescer),
            "breaker_trips": self._breaker.trips,
            "breaker_open_keys": self._breaker.open_keys(),
            "worker_restarts": (
                self._pool.restarts if self._pool is not None else 0
            ),
        }
        document = {
            "seed": self.seed,
            "engine_version": ENGINE_VERSION,
            "state": self._state,
            "stats": self.stats.to_dict(),
            "workers": (
                self._pool.worker_stats() if self._pool is not None else []
            ),
        }
        return document


def _error_body(exc: BaseException) -> bytes:
    return _error_body_named(str(exc) or type(exc).__name__)


def _error_body_named(message: str) -> bytes:
    import json

    return (json.dumps({"error": message}) + "\n").encode("utf-8")
