"""The daemon's request brain: memo, coalescing, batching, dispatch.

:class:`ServeApp` owns the warm state (one
:class:`~repro.api.dispatch.QueryContext`, optionally backed by the
disk :class:`~repro.core.cache.ArtifactCache`) and answers decoded
query payloads.  The serving path, fastest first:

1. **response memo** -- an LRU of fully serialized response bytes
   keyed by spec key; a hit never leaves the event loop;
2. **coalescing** -- an in-flight map on the same key, so concurrent
   identical queries share one computation
   (:mod:`repro.serve.coalesce`);
3. **batching** -- fleet-family leaders wait out a few-millisecond
   window and execute per cohort group against one shared engine
   (:mod:`repro.serve.batch`);
4. **dispatch** -- everything bottoms out in
   :func:`repro.api.execute`, disk cache included.

All computation runs on the event loop's default thread-pool executor;
the loop itself only routes.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.dispatch import QueryContext, execute
from repro.api.requests import (
    FLEET_FAMILIES,
    QueryRequest,
    request_from_dict,
    spec_suffix,
)
from repro.api.result import QueryResult
from repro.core.cache import ENGINE_VERSION, ArtifactCache, cache_key


@dataclass
class ServeStats:
    """Counters for one daemon lifetime."""

    queries: int = 0
    memo_hits: int = 0
    coalesced: int = 0
    computations: int = 0
    disk_hits: int = 0
    errors: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, int]:
        """The counters as a flat JSON-ready dict."""
        payload = {
            "queries": self.queries,
            "memo_hits": self.memo_hits,
            "coalesced": self.coalesced,
            "computations": self.computations,
            "disk_hits": self.disk_hits,
            "errors": self.errors,
        }
        payload.update(self.extra)
        return payload


class ServeApp:
    """Answer query payloads with memoization, coalescing and batching."""

    def __init__(
        self,
        seed: int = 2016,
        cache: Optional[ArtifactCache] = None,
        memo_size: int = 4096,
        window_s: float = 0.002,
    ) -> None:
        from repro.serve.batch import BatchWindow
        from repro.serve.coalesce import Coalescer

        self.seed = seed
        self.context = QueryContext(cache=cache)
        self.stats = ServeStats()
        self.memo_size = memo_size
        self._memo: "OrderedDict[str, bytes]" = OrderedDict()
        self._fingerprints: Dict[int, str] = {}
        self._coalescer = Coalescer()
        self._batch = BatchWindow(
            self._execute_group, QueryContext.fleet_key, window_s
        )

    # -- warm-up -----------------------------------------------------------------

    def warm(self) -> None:
        """Load the corpus, column store and fingerprint once, up front."""
        corpus = self.context.corpus(self.seed)
        corpus.columns()
        self._fingerprints[self.seed] = corpus.fingerprint()

    # -- serving -----------------------------------------------------------------

    async def handle_query(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """Answer one decoded ``/query`` body.

        Returns ``(http_status, response_bytes)``; the body is always a
        JSON document -- a :class:`~repro.api.result.QueryResult`
        envelope on success, an ``{"error": ...}`` object otherwise.
        """
        self.stats.queries += 1
        try:
            request = request_from_dict(payload)
            if not type(request).servable:
                raise ValueError(
                    f"family {type(request).family!r} is not servable; "
                    "run it through the CLI"
                )
            key = await self._spec_key(request)
            memo = self._memo_get(key)
            if memo is not None:
                self.stats.memo_hits += 1
                return 200, memo
            body, shared = await self._coalescer.run(
                key, lambda: self._compute(request, key)
            )
            if shared:
                self.stats.coalesced += 1
            return 200, body
        except (ValueError, KeyError) as exc:
            self.stats.errors += 1
            return 400, _error_body(exc)
        except Exception as exc:  # pragma: no cover - defensive
            self.stats.errors += 1
            return 500, _error_body(exc)

    async def _compute(self, request: QueryRequest, key: str) -> bytes:
        if type(request).family in FLEET_FAMILIES:
            result = await self._batch.submit(request)
        else:
            loop = asyncio.get_running_loop()
            self.stats.computations += 1
            result = await loop.run_in_executor(
                None, execute, request, self.context
            )
        if result.provenance.cache_hit:
            self.stats.disk_hits += 1
        body = (result.to_json() + "\n").encode("utf-8")
        if type(request).cacheable and result.exit_code == 0:
            self._memo_put(key, body)
        return body

    def _execute_group(self, requests: List[QueryRequest]) -> List[QueryResult]:
        """One batch group: every request against the shared context."""
        self.stats.computations += len(requests)
        return [execute(request, self.context) for request in requests]

    # -- identity ----------------------------------------------------------------

    async def _spec_key(self, request: QueryRequest) -> str:
        """The cache-grade identity of a request (backend-independent)."""
        fingerprint = ""
        if type(request).needs_corpus:
            fingerprint = self._fingerprints.get(request.seed, "")
            if not fingerprint:
                loop = asyncio.get_running_loop()
                fingerprint = await loop.run_in_executor(
                    None,
                    lambda: self.context.corpus(request.seed).fingerprint(),
                )
                self._fingerprints[request.seed] = fingerprint
        return cache_key(fingerprint, spec_suffix(request), ENGINE_VERSION)

    # -- response memo -----------------------------------------------------------

    def _memo_get(self, key: str) -> Optional[bytes]:
        body = self._memo.get(key)
        if body is not None:
            self._memo.move_to_end(key)
        return body

    def _memo_put(self, key: str, body: bytes) -> None:
        self._memo[key] = body
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)

    # -- introspection -----------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats`` document."""
        self.stats.extra = {
            "batched": self._batch.batched,
            "batch_groups": self._batch.groups,
            "memo_entries": len(self._memo),
        }
        return {
            "seed": self.seed,
            "engine_version": ENGINE_VERSION,
            "stats": self.stats.to_dict(),
        }


def _error_body(exc: BaseException) -> bytes:
    import json

    message = str(exc) or type(exc).__name__
    return (json.dumps({"error": message}) + "\n").encode("utf-8")
