"""A keep-alive client for the ``repro serve`` daemon.

Used by the serve tests, the CI smoke job and the benchmark: one
:class:`ServeClient` holds one persistent ``http.client`` connection,
so a tight query loop measures the daemon, not TCP handshakes.
:func:`mixed_query_payloads` is the canonical benchmark workload -- a
deterministic rotation over every servable query family.

The client understands the daemon's overload answers.  Pass a
:class:`~repro.core.resilience.RetryPolicy` and a ``503`` (shed,
draining, or circuit-broken) is retried with seeded exponential
backoff, sleeping the server's ``Retry-After`` hint when it exceeds
the policy's own delay; connection errors retry under the same policy.
Without a policy the behavior is the historical one: a single fresh
reconnect on a stale keep-alive socket, and every status returned
as-is.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.resilience import RetryPolicy


class ServeClient:
    """One persistent connection to a running daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8631,
                 timeout_s: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self._sleep = sleep
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Headers of the most recent response (lower-cased names).
        self.last_headers: Dict[str, str] = {}
        #: 503 answers retried under the policy (for tests/telemetry).
        self.retried_503 = 0

    def _conn(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def close(self) -> None:
        """Drop the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request_once(self, method: str, target: str,
                      body: Optional[bytes],
                      headers: Dict[str, str]) -> Tuple[int, Any]:
        connection = self._conn()
        connection.request(method, target, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        return response.status, json.loads(raw.decode("utf-8"))

    def _retry_after_s(self) -> Optional[float]:
        value = self.last_headers.get("retry-after")
        if value is None:
            return None
        try:
            return max(float(value), 0.0)
        except ValueError:
            return None

    def _exchange(self, method: str, target: str,
                  body: Optional[bytes] = None,
                  extra_headers: Optional[Dict[str, str]] = None) -> Tuple[int, Any]:
        headers: Dict[str, str] = {}
        if body:
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        if self.retry is None:
            try:
                return self._request_once(method, target, body, headers)
            except (http.client.HTTPException, OSError):
                self.close()  # stale keep-alive socket: retry once, fresh
                return self._request_once(method, target, body, headers)
        site = f"serve.client:{target}"
        last_error: Optional[BaseException] = None
        status, document = 0, None
        for attempt in range(self.retry.attempts):
            if attempt:
                delay = self.retry.delay_s(site, attempt)
                hint = self._retry_after_s()
                if hint is not None:
                    delay = max(delay, hint)
                self._sleep(delay)
            try:
                status, document = self._request_once(
                    method, target, body, headers
                )
            except (http.client.HTTPException, OSError) as exc:
                last_error = exc
                self.close()  # reconnect fresh on the next attempt
                continue
            last_error = None
            if status != 503:
                return status, document
            self.retried_503 += 1
        if last_error is not None:
            raise last_error
        return status, document

    def healthz(self) -> Dict[str, Any]:
        """The liveness document."""
        return self._exchange("GET", "/healthz")[1]

    def stats(self) -> Dict[str, Any]:
        """The daemon's serving counters."""
        return self._exchange("GET", "/stats")[1]

    def artifacts(self) -> Dict[str, Any]:
        """The registry listing payload."""
        return self._exchange("GET", "/artifacts")[1]["payload"]

    def query(self, payload: Dict[str, Any],
              deadline_ms: Optional[float] = None) -> Tuple[int, Dict[str, Any]]:
        """POST one request payload; returns (status, envelope-or-error).

        ``deadline_ms`` is sent as the ``X-Repro-Deadline-Ms`` header;
        the daemon answers ``504`` when the budget expires.
        """
        body = json.dumps(payload).encode("utf-8")
        extra: Optional[Dict[str, str]] = None
        if deadline_ms is not None:
            extra = {"X-Repro-Deadline-Ms": f"{deadline_ms:g}"}
        return self._exchange("POST", "/query", body, extra)


def mixed_query_payloads(servers: int = 30, steps: int = 8) -> List[Dict[str, Any]]:
    """The benchmark's rotation: one payload per servable family."""
    return [
        {"family": "list"},
        {"family": "stats", "metric": "ep"},
        {"family": "stats", "metric": "peak_ee", "hw_year_min": 2013,
         "hw_year_max": 2016},
        {"family": "cdf", "metric": "ep", "lo": 0.2, "hi": 0.4},
        {"family": "group", "by": "family"},
        {"family": "placement", "servers": servers, "demand_fraction": 0.5},
        {"family": "cap", "servers": servers, "power_cap_w": 5000.0},
        {"family": "replay", "servers": servers, "steps": steps},
        {"family": "sweep", "server": 2},
        {"family": "artifact", "artifact_id": "fig3"},
    ]
