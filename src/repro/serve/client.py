"""A keep-alive client for the ``repro serve`` daemon.

Used by the serve tests, the CI smoke job and the benchmark: one
:class:`ServeClient` holds one persistent ``http.client`` connection,
so a tight query loop measures the daemon, not TCP handshakes.
:func:`mixed_query_payloads` is the canonical benchmark workload -- a
deterministic rotation over every servable query family.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Tuple


class ServeClient:
    """One persistent connection to a running daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8631,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._connection: Optional[http.client.HTTPConnection] = None

    def _conn(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def close(self) -> None:
        """Drop the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _exchange(self, method: str, target: str,
                  body: Optional[bytes] = None) -> Tuple[int, Any]:
        connection = self._conn()
        try:
            connection.request(
                method, target, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            self.close()  # stale keep-alive socket: retry once, fresh
            connection = self._conn()
            connection.request(
                method, target, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            raw = response.read()
        return response.status, json.loads(raw.decode("utf-8"))

    def healthz(self) -> Dict[str, Any]:
        """The liveness document."""
        return self._exchange("GET", "/healthz")[1]

    def stats(self) -> Dict[str, Any]:
        """The daemon's serving counters."""
        return self._exchange("GET", "/stats")[1]

    def artifacts(self) -> Dict[str, Any]:
        """The registry listing payload."""
        return self._exchange("GET", "/artifacts")[1]["payload"]

    def query(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """POST one request payload; returns (status, envelope-or-error)."""
        body = json.dumps(payload).encode("utf-8")
        return self._exchange("POST", "/query", body)


def mixed_query_payloads(servers: int = 30, steps: int = 8) -> List[Dict[str, Any]]:
    """The benchmark's rotation: one payload per servable family."""
    return [
        {"family": "list"},
        {"family": "stats", "metric": "ep"},
        {"family": "stats", "metric": "peak_ee", "hw_year_min": 2013,
         "hw_year_max": 2016},
        {"family": "cdf", "metric": "ep", "lo": 0.2, "hi": 0.4},
        {"family": "group", "by": "family"},
        {"family": "placement", "servers": servers, "demand_fraction": 0.5},
        {"family": "cap", "servers": servers, "power_cap_w": 5000.0},
        {"family": "replay", "servers": servers, "steps": steps},
        {"family": "sweep", "server": 2},
        {"family": "artifact", "artifact_id": "fig3"},
    ]
