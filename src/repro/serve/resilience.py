"""Overload-resilience primitives for the serve daemon.

The daemon's fast path (memo -> coalesce -> batch -> engine) is only
fast while the box is not saturated; these are the mechanisms that
keep it *correct* when it is:

* :class:`ServeLimits` — one frozen bundle of every knob (in-flight
  bound, accept-queue bound, drain budget, breaker thresholds),
  settable from the ``serve`` CLI flags;
* :class:`AdmissionController` — a bounded in-flight semaphore plus a
  bounded accept queue.  A request either gets a slot, waits its turn
  in the queue (never past its own deadline), or is *shed* immediately
  — the daemon answers a shed with ``503`` and a ``Retry-After`` hint
  instead of letting latency grow without bound;
* :class:`Deadline` — a per-request wall-clock budget parsed from the
  ``X-Repro-Deadline-Ms`` header or ``deadline_ms`` body field, carried
  through admission, coalescing and batching so every wait is bounded
  by the *requester's* patience (``asyncio.wait_for`` everywhere);
* :class:`CircuitBreaker` — per-spec-key failure accounting over the
  PR 4 taxonomy (:func:`repro.core.resilience.classify`): transient
  failures are the client's retry problem, but ``times`` consecutive
  *permanent* (build/data) failures trip the key open and the daemon
  fails fast with ``503`` for a cooldown window instead of burning
  engine time on a spec that cannot succeed.  After the cooldown one
  trial request probes the key (half-open) and a success closes it.

Everything is event-loop-local (no locks needed: admission and breaker
state are only touched from the daemon's loop) and deterministic under
an injected clock, which is what the chaos harness pins.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.resilience import DeadlineExceeded, classify

#: Taxonomy buckets that count toward tripping a breaker.  Transients
#: are expected to clear on retry; cache failures already degrade to a
#: rebuild inside the engine.
PERMANENT_BUCKETS = ("build", "data")


@dataclass(frozen=True)
class ServeLimits:
    """Every overload knob of the daemon, in one frozen bundle.

    ``max_inflight`` bounds concurrently *executing* queries;
    ``max_queue`` bounds how many more may wait for a slot before the
    daemon starts shedding; ``retry_after_s`` is the hint sent with a
    shed; ``drain_s`` is the budget ``stop()``/SIGTERM gives in-flight
    work before closing connections; ``breaker_failures`` consecutive
    permanent engine failures trip a spec key open for
    ``breaker_cooldown_s`` seconds.
    """

    max_inflight: int = 64
    max_queue: int = 256
    retry_after_s: float = 1.0
    drain_s: float = 10.0
    breaker_failures: int = 5
    breaker_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.retry_after_s <= 0.0:
            raise ValueError("retry_after_s must be positive")
        if self.drain_s < 0.0:
            raise ValueError(f"drain_s must be >= 0, got {self.drain_s}")
        if self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown_s <= 0.0:
            raise ValueError("breaker_cooldown_s must be positive")


class Deadline:
    """One request's wall-clock budget, in monotonic time."""

    __slots__ = ("deadline_ms", "_expires_at")

    def __init__(self, deadline_ms: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        deadline_ms = float(deadline_ms)
        # not `<= 0`: NaN compares False both ways, and an inf budget
        # would turn every wait_for into an unbounded park
        if not math.isfinite(deadline_ms) or deadline_ms <= 0.0:
            raise ValueError(
                "deadline_ms must be a positive finite number, "
                f"got {deadline_ms:g}"
            )
        self.deadline_ms = deadline_ms
        self._expires_at = clock() + self.deadline_ms / 1000.0

    @classmethod
    def from_ms(cls, deadline_ms: Optional[object]) -> Optional["Deadline"]:
        """Parse a header/field value; ``None``/absent means no deadline."""
        if deadline_ms is None:
            return None
        try:
            value = float(deadline_ms)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            ) from None
        return cls(value)

    def remaining_s(self, clock: Callable[[], float] = time.monotonic) -> float:
        """Seconds of budget left (may be <= 0 once expired)."""
        return self._expires_at - clock()

    def expired(self, clock: Callable[[], float] = time.monotonic) -> bool:
        """Whether the budget is already spent."""
        return self.remaining_s(clock) <= 0.0

    def error(self, site: str) -> DeadlineExceeded:
        """The taxonomy error for missing this deadline at ``site``."""
        return DeadlineExceeded(site, self.deadline_ms)


class AdmissionController:
    """Bounded in-flight slots plus a bounded FIFO accept queue.

    ``try_acquire`` returns ``True`` with a slot held, ``False`` for an
    immediate shed (queue full), and raises
    :class:`~repro.core.resilience.DeadlineExceeded` when the caller's
    deadline expires while queued.  Exactly one ``release()`` per
    successful acquire.
    """

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        # created lazily on the serving loop: 3.9 binds primitives to the
        # loop current at construction, and the app is built off-loop
        self._slots: Optional[asyncio.Semaphore] = None
        self._active = 0
        self._waiting = 0

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_inflight)
        return self._slots

    @property
    def active(self) -> int:
        """Slots currently held (executing queries)."""
        return self._active

    @property
    def waiting(self) -> int:
        """Requests parked in the accept queue."""
        return self._waiting

    @property
    def saturated(self) -> bool:
        """Whether a new arrival would have to queue or shed."""
        return self._active >= self.max_inflight

    async def try_acquire(self, deadline: Optional[Deadline] = None) -> bool:
        """Take a slot, queue for one (bounded), or shed (``False``)."""
        if self._active >= self.max_inflight and self._waiting >= self.max_queue:
            return False
        slots = self._semaphore()
        self._waiting += 1
        try:
            if deadline is None:
                await slots.acquire()
            else:
                budget = deadline.remaining_s()
                if budget <= 0.0:
                    raise deadline.error("serve.admission")
                try:
                    await asyncio.wait_for(slots.acquire(), budget)
                except asyncio.TimeoutError:
                    raise deadline.error("serve.admission") from None
        finally:
            self._waiting -= 1
        self._active += 1
        return True

    def release(self) -> None:
        """Return one slot (wakes the oldest queued request)."""
        self._active -= 1
        self._semaphore().release()


class _KeyState:
    """Per-spec-key breaker account: consecutive permanents + state."""

    __slots__ = ("failures", "opened_at", "probe_at", "last_failure")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probe_at: Optional[float] = None
        self.last_failure = 0.0


class CircuitBreaker:
    """Fail fast on spec keys that keep failing permanently.

    ``check(key)`` returns ``None`` (closed: go compute) or the number
    of seconds until the next probe is allowed (open: answer 503 with
    that as the ``Retry-After`` hint).  Once the cooldown elapses the
    key goes *half-open*: exactly one trial computation is let through,
    and its outcome closes or re-opens the circuit.

    A probe can exit without ever reaching a verdict — shed by
    admission, deadline-expired while queued, or riding a coalesced
    flight whose last waiter abandoned it.  Two mechanisms keep that
    from wedging the key open forever: the serving path reports such
    exits via :meth:`probe_aborted` (a new probe may go at once), and
    every armed probe carries a timestamp so one lost without *any*
    notice goes stale after another cooldown and the next request
    re-probes.

    State is bounded: failure streaks that stay closed decay once they
    go ``cooldown_s`` without a new failure, and the key map is capped
    at ``max_keys`` entries (oldest closed streaks evicted first).
    """

    def __init__(self, failures: int, cooldown_s: float,
                 clock: Callable[[], float] = time.monotonic,
                 max_keys: int = 1024) -> None:
        self.failures = int(failures)
        self.cooldown_s = float(cooldown_s)
        self.max_keys = int(max_keys)
        if self.max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self._clock = clock
        self._keys: "OrderedDict[str, _KeyState]" = OrderedDict()
        #: Open transitions over this breaker's lifetime.
        self.trips = 0

    def check(self, key: str) -> Optional[float]:
        """``None`` to proceed; else seconds until the next probe."""
        state = self._keys.get(key)
        if state is None:
            return None
        now = self._clock()
        if state.opened_at is None:
            if now - state.last_failure >= self.cooldown_s:
                # the failure streak went cold without tripping: forget it
                del self._keys[key]
            return None
        elapsed = now - state.opened_at
        if elapsed < self.cooldown_s:
            return max(self.cooldown_s - elapsed, 0.001)
        if state.probe_at is not None:
            probe_age = now - state.probe_at
            if probe_age < self.cooldown_s:
                # one probe is in flight; keep shedding until it lands
                return max(self.cooldown_s - probe_age, 0.001)
            # the probe vanished without a verdict or an abort notice:
            # it is stale now, so re-arm rather than stay open forever
        state.probe_at = now  # this caller becomes the probe
        return None

    def probe_aborted(self, key: str) -> None:
        """The half-open probe exited without reaching a verdict.

        Called by the serving path when a request that passed
        :meth:`check` sheds, deadline-expires, or is cancelled before
        its computation settles; a no-op unless ``key`` has an armed
        probe.  Clears the probe slot so the next request re-probes
        immediately instead of waiting out the staleness window.
        """
        state = self._keys.get(key)
        if state is not None:
            state.probe_at = None

    def record_success(self, key: str) -> None:
        """A computation for ``key`` succeeded: close and forget it."""
        self._keys.pop(key, None)

    def record_failure(self, key: str, error: BaseException) -> None:
        """Account one computation failure under the taxonomy."""
        if classify(error) not in PERMANENT_BUCKETS:
            # transient/cache: the retry path's problem — but a probe
            # that failed transiently still reached no verdict on the
            # spec, so free the slot for the next request to re-probe
            self.probe_aborted(key)
            return
        now = self._clock()
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState()
        elif state.opened_at is None and (
            now - state.last_failure >= self.cooldown_s
        ):
            state.failures = 0  # stale streak: restart the count
        state.last_failure = now
        self._keys.move_to_end(key)
        if state.opened_at is not None:
            # the half-open probe failed: re-open for a fresh cooldown
            state.opened_at = now
            state.probe_at = None
            self.trips += 1
        else:
            state.failures += 1
            if state.failures >= self.failures:
                state.opened_at = now
                state.probe_at = None
                self.trips += 1
        while len(self._keys) > self.max_keys:
            victim = next(
                (k for k, s in self._keys.items() if s.opened_at is None),
                next(iter(self._keys)),
            )
            del self._keys[victim]

    def tracked_keys(self) -> int:
        """How many spec keys currently hold breaker state."""
        return len(self._keys)

    def open_keys(self) -> int:
        """How many spec keys are currently tripped open."""
        return sum(
            1 for state in self._keys.values() if state.opened_at is not None
        )
