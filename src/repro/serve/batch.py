"""Small-window batching of compatible fleet queries.

Placement, cap and replay queries over the same cohort (seed, hardware
year range, tiled fleet size) share a ``BatchPlacementEngine`` /
``BatchTraceReplay``.  Building that engine dominates the cost of a
single query, so the daemon holds arriving fleet queries for a few
milliseconds, groups the window's contents by cohort, and executes
each group as *one* job against the shared
:class:`~repro.api.dispatch.QueryContext` -- the context's memoization
means the group performs a single engine construction no matter how
many queries rode the window.

The window is deadline-aware: a waiter may bound its stay with
``timeout_s`` (:class:`~repro.core.resilience.DeadlineExceeded` on
expiry, which cancels only *its own* future), and the flush skips
entries whose future is already settled or cancelled -- a deadline
storm that expires every rider of a window executes zero engine work.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.resilience import DeadlineExceeded


class BatchWindow:
    """Collect compatible requests briefly, execute them as groups.

    ``execute_group`` takes a list of requests and returns the list of
    results in order.  A synchronous callable runs on the event loop's
    default executor; a coroutine function (the worker-pool path) is
    awaited directly — the pool does its own off-loop dispatch.
    Either way groups from one window proceed concurrently with each
    other and with non-batched work.
    """

    def __init__(
        self,
        execute_group: Callable[[List[Any]], Any],
        group_key: Callable[[Any], Tuple],
        window_s: float = 0.002,
    ) -> None:
        self._execute_group = execute_group
        self._execute_is_async = asyncio.iscoroutinefunction(execute_group)
        self._group_key = group_key
        self.window_s = window_s
        self._pending: List[Tuple[Any, "asyncio.Future[Any]"]] = []
        self._flusher: "asyncio.Task[None] | None" = None
        #: Groups executed (each one engine build).
        self.groups = 0
        #: Requests that shared a group with at least one other request.
        self.batched = 0

    @property
    def pending(self) -> int:
        """Requests currently waiting for the window to flush."""
        return len(self._pending)

    async def submit(
        self, request: Any, timeout_s: Optional[float] = None
    ) -> Any:
        """Enqueue one request; resolves when its group has executed.

        With ``timeout_s`` the wait is bounded: on expiry this rider's
        future is cancelled (the group, if it still runs, skips it) and
        :class:`DeadlineExceeded` is raised.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._pending.append((request, future))
        if self._flusher is None:
            self._flusher = loop.create_task(self._flush_after_window())
        if timeout_s is None:
            return await future
        if timeout_s <= 0.0:
            future.cancel()
            raise DeadlineExceeded("serve.batch", 0.0)
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                "serve.batch", timeout_s * 1000.0
            ) from None

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.window_s)
        pending, self._pending = self._pending, []
        self._flusher = None
        # deadline-expired riders cancelled their futures; drop them now
        live = [entry for entry in pending if not entry[1].done()]
        groups: Dict[Tuple, List[Tuple[Any, "asyncio.Future[Any]"]]] = {}
        for entry in live:
            groups.setdefault(self._group_key(entry[0]), []).append(entry)
        await asyncio.gather(
            *(self._run_group(group) for group in groups.values())
        )

    async def _run_group(
        self, group: List[Tuple[Any, "asyncio.Future[Any]"]]
    ) -> None:
        self.groups += 1
        if len(group) > 1:
            self.batched += len(group)
        requests = [request for request, _future in group]
        loop = asyncio.get_running_loop()
        try:
            if self._execute_is_async:
                results = await self._execute_group(requests)
            else:
                results = await loop.run_in_executor(
                    None, self._execute_group, requests
                )
        except BaseException as exc:  # propagate to every waiter
            for _request, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_request, future), result in zip(group, results):
            if not future.done():
                future.set_result(result)
