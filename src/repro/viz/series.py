"""Named data series and CSV export."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class Series:
    """One named (x, y) series of a figure."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    @classmethod
    def from_xy(
        cls, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> "Series":
        if len(xs) != len(ys):
            raise ValueError("x and y must have equal length")
        return cls(name=name, points=tuple(zip(map(float, xs), map(float, ys))))

    def xs(self) -> List[float]:
        """The x coordinates."""
        return [x for x, _ in self.points]

    def ys(self) -> List[float]:
        """The y coordinates."""
        return [y for _, y in self.points]


def to_csv(
    series_list: Sequence[Series],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Export series in long form (series, x, y); returns the CSV text.

    When ``path`` is given the CSV is also written to disk.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", "x", "y"])
    for series in series_list:
        for x, y in series.points:
            writer.writerow([series.name, repr(x), repr(y)])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
