"""Stacked percentage bars (the native form of Figs. 8 and 16)."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

#: Fill glyphs assigned to categories in order.
FILL_GLYPHS = "#=+:*%o."


def stacked_bars(
    rows: Mapping[object, Mapping[object, float]],
    width: int = 50,
    title: Optional[str] = None,
    category_order: Optional[Sequence[object]] = None,
) -> str:
    """Render {row: {category: value}} as 100%-stacked horizontal bars.

    Each row is normalized to the bar width; the legend maps glyphs to
    categories.  Zero rows render empty.
    """
    if not rows:
        raise ValueError("nothing to render")
    categories: list = []
    if category_order is not None:
        categories = list(category_order)
    for row in rows.values():
        for category in row:
            if category not in categories:
                categories.append(category)
    glyphs = {
        category: FILL_GLYPHS[i % len(FILL_GLYPHS)]
        for i, category in enumerate(categories)
    }
    label_width = max(len(str(label)) for label in rows)

    lines = []
    if title:
        lines.append(title)
    for label, row in rows.items():
        total = sum(row.values())
        if total <= 0.0:
            lines.append(f"{str(label):>{label_width}} |")
            continue
        # Largest-remainder apportionment keeps the bar exactly `width`.
        exact = {c: row.get(c, 0.0) / total * width for c in categories}
        cells = {c: int(exact[c]) for c in categories}
        shortfall = width - sum(cells.values())
        for c in sorted(categories, key=lambda c: exact[c] - cells[c], reverse=True):
            if shortfall <= 0:
                break
            cells[c] += 1
            shortfall -= 1
        bar = "".join(glyphs[c] * cells[c] for c in categories)
        lines.append(f"{str(label):>{label_width}} |{bar}|")
    legend = "  ".join(f"{glyphs[c]}={c}" for c in categories)
    lines.append(legend)
    return "\n".join(lines)
