"""Character-canvas charts.

Nothing fancy: a fixed-size canvas, linear axis mapping, one glyph per
series, and an axis frame with min/max annotations.  Enough to eyeball
every figure in the reproduction without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "*o+x#@%&"


def _canvas(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _bounds(values: Sequence[float], pad: float = 0.0) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        lo -= 0.5
        hi += 0.5
    span = hi - lo
    return lo - pad * span, hi + pad * span


def _render(
    canvas: List[List[str]],
    x_range: Tuple[float, float],
    y_range: Tuple[float, float],
    title: str,
    legend: Dict[str, str],
) -> str:
    height = len(canvas)
    width = len(canvas[0])
    lines = []
    if title:
        lines.append(title)
    y_lo, y_hi = y_range
    x_lo, x_hi = x_range
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = f"{y_hi:>10.3g} |"
        elif row_index == height - 1:
            label = f"{y_lo:>10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11} {x_lo:<.3g}{'':{max(1, width - 12)}}{x_hi:>.3g}")
    if legend:
        lines.append("  ".join(f"{glyph}={name}" for name, glyph in legend.items()))
    return "\n".join(lines)


def _plot_points(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int,
    height: int,
    title: str,
    connect: bool,
) -> str:
    all_x = [x for points in series.values() for x, _ in points]
    all_y = [y for points in series.values() for _, y in points]
    if not all_x:
        raise ValueError("nothing to plot")
    x_lo, x_hi = _bounds(all_x)
    y_lo, y_hi = _bounds(all_y, pad=0.05)
    canvas = _canvas(width, height)
    legend = {}

    def place(x: float, y: float, glyph: str) -> None:
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y_hi - y) / (y_hi - y_lo) * (height - 1)))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        canvas[row][col] = glyph

    for index, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        legend[name] = glyph
        ordered = sorted(points)
        for x, y in ordered:
            place(x, y, glyph)
        if connect and len(ordered) > 1:
            # Interpolate between consecutive points for a line feel.
            for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
                steps = max(
                    2, int(abs(x1 - x0) / (x_hi - x_lo) * width * 1.5)
                )
                for step in range(1, steps):
                    t = step / steps
                    place(x0 + t * (x1 - x0), y0 + t * (y1 - y0), glyph)
    return _render(canvas, (x_lo, x_hi), (y_lo, y_hi), title, legend)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 18,
) -> str:
    """Multi-series line chart; each series is [(x, y), ...]."""
    return _plot_points(series, width, height, title, connect=True)


def scatter_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 18,
) -> str:
    """Multi-series scatter plot; each series is [(x, y), ...]."""
    return _plot_points(series, width, height, title, connect=False)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 48,
    value_format: str = "{:.3g}",
) -> str:
    """Horizontal bar chart of labeled values."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / peak * width)))
        rendered = value_format.format(value)
        lines.append(f"{str(label):>{label_width}} | {bar} {rendered}")
    return "\n".join(lines)
