"""Character heatmaps for two-dimensional grids (the Fig. 18-21 sweeps)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Shade ramp from cold to hot.
SHADES = " .:-=+*#%@"


def heatmap(
    grid: Dict[Tuple[float, float], float],
    row_label: str = "y",
    column_label: str = "x",
    title: Optional[str] = None,
    value_format: str = "{:.0f}",
) -> str:
    """Render a {(row, column): value} grid as a shaded character map.

    Rows and columns are sorted ascending; each cell shows the shade of
    its value within the grid's range plus the formatted value.  Missing
    cells render blank.
    """
    if not grid:
        raise ValueError("nothing to render")
    rows = sorted({key[0] for key in grid})
    columns = sorted({key[1] for key in grid})
    values = list(grid.values())
    low, high = min(values), max(values)
    span = high - low or 1.0

    def shade(value: float) -> str:
        index = int((value - low) / span * (len(SHADES) - 1))
        return SHADES[index]

    cell_texts = {}
    for key, value in grid.items():
        cell_texts[key] = f"{shade(value)}{value_format.format(value)}"
    cell_width = max(len(text) for text in cell_texts.values()) + 1

    lines = []
    if title:
        lines.append(title)
    header = " " * 10 + "".join(
        f"{column:>{cell_width}g}" for column in columns
    )
    lines.append(f"{row_label:>9}\\{column_label}")
    lines.append(header)
    for row in rows:
        cells = []
        for column in columns:
            text = cell_texts.get((row, column), "")
            cells.append(f"{text:>{cell_width}}")
        lines.append(f"{row:>10g}" + "".join(cells))
    lines.append(
        f"range: {value_format.format(low)} (' ') .. "
        f"{value_format.format(high)} ('@')"
    )
    return "\n".join(lines)


def sweep_heatmap(sweep, metric: str = "ee", title: Optional[str] = None) -> str:
    """Heatmap of a :class:`~repro.hwexp.sweeps.SweepResult` grid.

    Rows are memory-per-core configurations, columns pinned frequencies;
    ``metric`` is ``"ee"`` (overall efficiency) or ``"power"`` (peak
    watts).  The ondemand column is omitted (it is not a frequency).
    """
    extract = {
        "ee": lambda cell: cell.overall_efficiency,
        "power": lambda cell: cell.peak_power_w,
    }
    if metric not in extract:
        raise ValueError("metric must be 'ee' or 'power'")
    grid = {
        (cell.memory_per_core_gb, float(cell.frequency)): extract[metric](cell)
        for cell in sweep.cells
        if not cell.is_ondemand
    }
    if title is None:
        title = (
            f"{sweep.server.name}: "
            f"{'efficiency (ops/W)' if metric == 'ee' else 'peak power (W)'}"
        )
    return heatmap(grid, row_label="GB/core", column_label="GHz", title=title)
