"""Plain-text rendering of the study's figures and tables.

The benchmark harness regenerates every figure of the paper as data
series; this package renders them for the terminal: multi-series line
charts and scatter plots on a character canvas, aligned text tables,
and CSV export for downstream plotting tools.
"""

from repro.viz.ascii_chart import bar_chart, line_chart, scatter_chart
from repro.viz.heatmap import heatmap, sweep_heatmap
from repro.viz.stacked import stacked_bars
from repro.viz.series import Series, to_csv
from repro.viz.tables import format_table

__all__ = [
    "Series",
    "bar_chart",
    "format_table",
    "heatmap",
    "line_chart",
    "stacked_bars",
    "sweep_heatmap",
    "scatter_chart",
    "to_csv",
]
