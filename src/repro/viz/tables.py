"""Aligned plain-text tables."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned table.

    Floats are formatted with ``float_format``; everything else through
    ``str``.  Columns are right-aligned except the first.
    """
    if not headers:
        raise ValueError("a table needs headers")

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(value) for value in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(h).ljust(widths[i]) if i == 0 else str(h).rjust(widths[i])
        for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(
                v.ljust(widths[i]) if i == 0 else v.rjust(widths[i])
                for i, v in enumerate(row)
            )
        )
    return "\n".join(lines)
