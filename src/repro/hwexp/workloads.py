"""Per-workload EP/EE characterization of a testbed server.

Implements the paper's Section VII future-work agenda and the Section
V.C caveat ("for specific applications, the server may exhibit energy
proportionality and energy efficiency curve different from that of
SPECpower workload"): the same physical server, driven by different
workload variants (:mod:`repro.ssj.variants`), yields different
power--utilization and efficiency curves and therefore different EP.

The characterization can run analytically (deterministic model
evaluation, the default) or through the full discrete-event benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.hwexp.testbed import TestbedServer
from repro.metrics.ee import peak_efficiency_spots
from repro.metrics.ep import TARGET_LOADS_DESCENDING, energy_proportionality
from repro.power.governors import OndemandGovernor
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner
from repro.ssj.variants import WorkloadVariant


@dataclass(frozen=True)
class WorkloadCharacterization:
    """One (server, workload) energy characterization."""

    server_name: str
    workload: str
    utilization: tuple
    power_w: tuple
    throughput_ops: tuple
    active_idle_w: float
    ep: float
    overall_ee: float
    peak_spots: tuple


def _configured(server: TestbedServer, variant: WorkloadVariant):
    """Power model and throughput profile tuned to the workload."""
    power_model = server.power_model()
    power_model.memory_intensity_ratio = variant.memory_intensity
    profile = replace(server.profile, compute_fraction=variant.compute_fraction)
    return power_model, profile


def characterize(
    server: TestbedServer,
    variant: WorkloadVariant,
    method: str = "analytic",
    plan: Optional[MeasurementPlan] = None,
    seed: int = 2016,
) -> WorkloadCharacterization:
    """Measure one server's EP/EE curves under one workload."""
    if method not in ("analytic", "simulate"):
        raise ValueError("method must be 'analytic' or 'simulate'")
    power_model, profile = _configured(server, variant)
    governor = OndemandGovernor()
    cpu = power_model.cpus[0]

    if method == "simulate":
        runner = SsjRunner(
            server=power_model,
            profile=profile,
            governor=governor,
            plan=plan or MeasurementPlan(interval_s=3.0, ramp_s=0.5),
            seed=seed,
            mix=variant.mix,
        )
        report = runner.run()
        loads = [0.0] + sorted(level.target_load for level in report.levels)
        by_load = {level.target_load: level for level in report.levels}
        powers = [report.active_idle_power_w] + [
            by_load[load].average_power_w for load in loads[1:]
        ]
        ops = [by_load[load].throughput_ops_per_s for load in loads[1:]]
        idle = report.active_idle_power_w
        score = report.overall_score()
        spots = report.peak_efficiency_spots(rtol=5e-3)
    else:
        cores = server.total_cores
        top = governor.select_frequency(cpu, 1.0)
        max_ops = cores * profile.ops_per_second_per_core(top)
        loads = [0.0] + sorted(TARGET_LOADS_DESCENDING)
        powers = []
        ops = []
        for load in loads:
            frequency = governor.select_frequency(cpu, load)
            capacity = cores * profile.ops_per_second_per_core(frequency)
            achieved = min(load * max_ops, capacity)
            utilization = min(1.0, (load * max_ops) / capacity)
            powers.append(power_model.wall_power_w(utilization, frequency))
            if load > 0.0:
                ops.append(achieved)
        idle = powers[0]
        score = sum(ops) / sum(powers)
        spots = peak_efficiency_spots(loads[1:], ops, powers[1:])

    return WorkloadCharacterization(
        server_name=server.name,
        workload=variant.name,
        utilization=tuple(loads),
        power_w=tuple(powers),
        throughput_ops=tuple(ops),
        active_idle_w=idle,
        ep=energy_proportionality(loads, powers),
        overall_ee=score,
        peak_spots=tuple(spots),
    )


def compare_workloads(
    server: TestbedServer,
    variants: Sequence[WorkloadVariant],
    method: str = "analytic",
) -> Dict[str, WorkloadCharacterization]:
    """Characterize one server under several workloads."""
    results: Dict[str, WorkloadCharacterization] = {}
    for variant in variants:
        results[variant.name] = characterize(server, variant, method=method)
    return results


def ep_spread(results: Dict[str, WorkloadCharacterization]) -> float:
    """Largest EP difference across the characterized workloads."""
    values: List[float] = [r.ep for r in results.values()]
    if not values:
        raise ValueError("no characterizations to compare")
    return max(values) - min(values)
