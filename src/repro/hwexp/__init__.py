"""The paper's hardware experiments (Section V, Figs. 18-21), simulated.

The paper ran SPECpower (OpenJDK 1.8, no tuning) on four 2U rack
servers (Table II), sweeping installed memory per core and pinned CPU
frequency plus the ondemand governor.  This package models those four
machines with the component power models of :mod:`repro.power` and a
throughput model with frequency sublinearity and heap-pressure (GC)
effects, then replays the same sweeps:

* :mod:`repro.hwexp.perf_model` -- the throughput model;
* :mod:`repro.hwexp.testbed` -- the four Table II configurations;
* :mod:`repro.hwexp.sweeps` -- the memory-per-core x frequency grid,
  evaluated either analytically (deterministic, fast) or through the
  full discrete-event benchmark.
"""

from repro.hwexp.perf_model import ServerThroughputProfile
from repro.hwexp.sweeps import SweepCell, SweepResult, run_sweep
from repro.hwexp.testbed import TESTBED, TestbedServer, testbed_table
from repro.hwexp.workloads import characterize, compare_workloads, ep_spread

__all__ = [
    "ServerThroughputProfile",
    "SweepCell",
    "SweepResult",
    "TESTBED",
    "TestbedServer",
    "characterize",
    "compare_workloads",
    "ep_spread",
    "run_sweep",
    "testbed_table",
]
