"""The four Table II rack servers, as component-model configurations.

Base configurations straight from Table II:

====  =============== ====== ==========================  =====  ======
No.   Name            Year   CPU                         Cores  Memory
====  =============== ====== ==========================  =====  ======
#1    Sugon A620r-G   2012   2x AMD Opteron 6272 (115W)  32     64 GB DDR3
#2    Sugon I620-G10  2013   1x Xeon E5-2603 (80W)       4      32 GB DDR3
#3    ThinkServer     2014   2x Xeon E5-2620 v2 (80W)    12     160 GB DDR4
      RD640
#4    ThinkServer     2015   2x Xeon E5-2620 v3 (85W)    12     192 GB DDR4
      RD450
====  =============== ====== ==========================  =====  ======

Each server's heap demand is the point the paper measured as its best
memory-per-core configuration (Section V.A: 1.75 GB for #1, 4 GB for
#2, 2.67 GB for #4), and the per-server efficiency scale is anchored so
the simulated efficiency magnitudes sit in the same decade as
Figs. 18-21 (tens of ops/W for the Bulldozer-era #1, ~1000 for the
tiny-socket #2, hundreds for #4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hwexp.perf_model import ServerThroughputProfile
from repro.power.components import SAS_10K, SATA_SSD, DiskPowerModel, FanPowerModel
from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.memory import populate
from repro.power.server import ServerPowerModel


def _frequency_ladder(low: float, high: float, step: float = 0.1) -> Tuple[float, ...]:
    count = int(round((high - low) / step)) + 1
    return tuple(round(low + i * step, 2) for i in range(count))


@dataclass(frozen=True)
class TestbedServer:
    """One Table II machine plus its calibrated performance profile."""

    number: int
    name: str
    hw_year: int
    cpu_model: str
    sockets: int
    cores_per_socket: int
    tdp_w: float
    frequencies_ghz: Tuple[float, ...]
    memory_generation: str
    dimm_size_gb: int
    stock_memory_gb: int
    disks: Tuple[DiskPowerModel, ...]
    profile: ServerThroughputProfile
    static_fraction: float
    tested_memory_per_core: Tuple[float, ...]

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def power_model(self, memory_gb: int = None) -> ServerPowerModel:
        """Build the server's power model at a memory configuration."""
        capacity = self.stock_memory_gb if memory_gb is None else memory_gb
        # Server parts run a narrow voltage band across P-states (the
        # uncore rail barely scales), so package power falls roughly
        # linearly -- not cubically -- with frequency.  Combined with
        # the platform floor this is what makes efficiency *drop* at
        # lower frequencies (Section V.B).
        cpu = CpuPowerModel(
            tdp_w=self.tdp_w,
            cores=self.cores_per_socket,
            operating_points=default_voltage_curve(
                self.frequencies_ghz, v_min=1.10, v_max=1.25
            ),
            static_fraction=self.static_fraction,
        )
        memory = populate(
            capacity, self.memory_generation, preferred_dimm_gb=self.dimm_size_gb
        )
        return ServerPowerModel(
            cpus=[cpu] * self.sockets,
            memory=memory,
            disks=list(self.disks),
            fans=FanPowerModel(base_w=10.0, max_w=36.0),
            motherboard_w=30.0,
        )

    def profile_for(self, memory_per_core_gb: float) -> ServerThroughputProfile:
        """The throughput profile at a memory configuration."""
        return self.profile.with_memory(memory_per_core_gb)

    def memory_gb_for(self, memory_per_core_gb: float) -> int:
        """Installed capacity realizing a memory-per-core ratio.

        Rounded to the nearest whole number of the smallest catalog
        DIMM (4 GB) so every configuration is physically populatable
        (e.g. 2.67 GB/core on 12 cores -> 32 GB).
        """
        raw = memory_per_core_gb * self.total_cores
        return max(4, int(round(raw / 4.0) * 4))


TESTBED: Dict[int, TestbedServer] = {
    1: TestbedServer(
        number=1,
        name="Sugon A620r-G",
        hw_year=2012,
        cpu_model="2*AMD Opteron 6272",
        sockets=2,
        cores_per_socket=16,
        tdp_w=115.0,
        frequencies_ghz=(1.4, 1.5, 1.7, 1.9, 2.1),
        memory_generation="DDR3",
        dimm_size_gb=8,
        stock_memory_gb=64,
        disks=(SAS_10K,) * 4,
        profile=ServerThroughputProfile(
            ops_per_core_at_max=330.0,
            max_frequency_ghz=2.1,
            compute_fraction=0.86,
            heap_demand_gb_per_core=1.75,
            memory_per_core_gb=2.0,
        ),
        static_fraction=0.40,  # Bulldozer-era leakage
        tested_memory_per_core=(1.25, 1.75, 2.0),
    ),
    2: TestbedServer(
        number=2,
        name="Sugon I620-G10",
        hw_year=2013,
        cpu_model="1*Intel Xeon E5-2603",
        sockets=1,
        cores_per_socket=4,
        tdp_w=80.0,
        frequencies_ghz=(1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8),
        memory_generation="DDR3",
        dimm_size_gb=4,
        stock_memory_gb=32,
        disks=(SAS_10K,),
        profile=ServerThroughputProfile(
            ops_per_core_at_max=52000.0,
            max_frequency_ghz=1.8,
            compute_fraction=0.78,
            heap_demand_gb_per_core=4.0,
            memory_per_core_gb=8.0,
        ),
        static_fraction=0.30,
        tested_memory_per_core=(2.0, 4.0, 8.0),
    ),
    3: TestbedServer(
        number=3,
        name="ThinkServer RD640",
        hw_year=2014,
        cpu_model="2*Intel Xeon E5-2620 v2",
        sockets=2,
        cores_per_socket=6,
        tdp_w=80.0,
        frequencies_ghz=_frequency_ladder(1.2, 2.1),
        memory_generation="DDR4",
        dimm_size_gb=16,
        stock_memory_gb=160,
        disks=(SATA_SSD,),
        profile=ServerThroughputProfile(
            ops_per_core_at_max=9000.0,
            max_frequency_ghz=2.1,
            compute_fraction=0.86,
            heap_demand_gb_per_core=2.67,
            memory_per_core_gb=13.33,
        ),
        static_fraction=0.26,
        tested_memory_per_core=(1.33, 2.67, 8.0, 13.33),
    ),
    4: TestbedServer(
        number=4,
        name="ThinkServer RD450",
        hw_year=2015,
        cpu_model="2*Intel Xeon E5-2620 v3",
        sockets=2,
        cores_per_socket=6,
        tdp_w=85.0,
        frequencies_ghz=_frequency_ladder(1.2, 2.4),
        memory_generation="DDR4",
        dimm_size_gb=16,
        stock_memory_gb=192,
        disks=(SATA_SSD,),
        profile=ServerThroughputProfile(
            ops_per_core_at_max=11000.0,
            max_frequency_ghz=2.4,
            compute_fraction=0.88,
            heap_demand_gb_per_core=2.67,
            memory_per_core_gb=16.0,
        ),
        static_fraction=0.24,
        tested_memory_per_core=(1.33, 2.67, 8.0, 16.0),
    ),
}


def testbed_table() -> List[List[object]]:
    """Table II rows for rendering."""
    rows = []
    for server in TESTBED.values():
        rows.append(
            [
                f"#{server.number}",
                server.name,
                server.hw_year,
                server.cpu_model,
                server.total_cores,
                f"{server.tdp_w:.0f}",
                f"{server.stock_memory_gb} ({server.memory_generation})",
                ", ".join(disk.kind for disk in server.disks),
            ]
        )
    return rows
