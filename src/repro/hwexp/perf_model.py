"""Throughput model with frequency sublinearity and heap pressure.

Two mechanisms, both cited by the paper:

1. *Frequency sublinearity.*  Only the compute-bound fraction of a
   transaction speeds up with the core clock; memory-bound cycles do
   not (the roofline argument).  Per-core throughput is therefore

       rate(f) = rate_max / (c * f_max / f + (1 - c))

   with compute fraction ``c``.  Because wall power falls faster than
   linearly in f (static power persists) while throughput falls like
   this, *efficiency drops monotonically at lower frequency* -- the
   Section V.B finding.

2. *Heap pressure.*  ssj2008 is a JVM workload: when the heap per core
   falls below the working-set demand, garbage-collection overhead
   grows super-linearly and throughput collapses; above the demand,
   extra memory buys (almost) nothing.  Combined with per-DIMM
   background power this produces a best memory-per-core point for
   efficiency -- the Section V.A finding.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerThroughputProfile:
    """Performance side of one testbed server.

    Parameters
    ----------
    ops_per_core_at_max:
        Per-core ssj_ops/s fully fed, at the top frequency, with ample
        memory.
    max_frequency_ghz:
        The top operating point the rate is calibrated at.
    compute_fraction:
        Share of per-transaction work that scales with frequency.
    heap_demand_gb_per_core:
        Working-set demand; memory per core below this triggers GC
        overhead.
    gc_steepness:
        Super-linearity of the GC penalty (1.5-2.5 is realistic).
    gc_weight:
        Magnitude of the GC penalty at 2x heap pressure.
    memory_per_core_gb:
        The installed configuration this profile instance models.
    """

    ops_per_core_at_max: float
    max_frequency_ghz: float
    compute_fraction: float = 0.75
    heap_demand_gb_per_core: float = 2.0
    gc_steepness: float = 1.6
    gc_weight: float = 0.55
    memory_per_core_gb: float = 4.0

    def __post_init__(self):
        if self.ops_per_core_at_max <= 0.0:
            raise ValueError("throughput must be positive")
        if self.max_frequency_ghz <= 0.0:
            raise ValueError("max frequency must be positive")
        if not 0.0 < self.compute_fraction <= 1.0:
            raise ValueError("compute fraction must lie in (0, 1]")
        if self.heap_demand_gb_per_core <= 0.0 or self.memory_per_core_gb <= 0.0:
            raise ValueError("memory figures must be positive")

    def frequency_scaling(self, frequency_ghz: float) -> float:
        """Throughput relative to the top frequency (1.0 at the top)."""
        if frequency_ghz <= 0.0:
            raise ValueError("frequency must be positive")
        ratio = self.max_frequency_ghz / frequency_ghz
        return 1.0 / (self.compute_fraction * ratio + (1.0 - self.compute_fraction))

    def gc_factor(self) -> float:
        """Throughput multiplier from heap pressure (<= 1.0)."""
        pressure = self.heap_demand_gb_per_core / self.memory_per_core_gb
        if pressure <= 1.0:
            return 1.0
        overhead = self.gc_weight * (pressure - 1.0) ** self.gc_steepness
        return 1.0 / (1.0 + overhead)

    def ops_per_second_per_core(self, frequency_ghz: float) -> float:
        """The :class:`~repro.ssj.engine.ThroughputProfile` interface."""
        return (
            self.ops_per_core_at_max
            * self.frequency_scaling(frequency_ghz)
            * self.gc_factor()
        )

    def with_memory(self, memory_per_core_gb: float) -> "ServerThroughputProfile":
        """Copy of the profile at a different memory configuration."""
        return ServerThroughputProfile(
            ops_per_core_at_max=self.ops_per_core_at_max,
            max_frequency_ghz=self.max_frequency_ghz,
            compute_fraction=self.compute_fraction,
            heap_demand_gb_per_core=self.heap_demand_gb_per_core,
            gc_steepness=self.gc_steepness,
            gc_weight=self.gc_weight,
            memory_per_core_gb=memory_per_core_gb,
        )
