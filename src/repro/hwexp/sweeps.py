"""The memory-per-core x frequency sweep (Figs. 18-21).

Every cell of the grid configures the server (installed memory, pinned
frequency or the ondemand governor) and measures its energy efficiency
and peak power, either *analytically* -- evaluating the power and
throughput models at each target load directly, deterministic and fast
-- or through the full discrete-event benchmark of :mod:`repro.ssj`
(``method="simulate"``), which adds queueing and measurement noise.
Both paths execute the same measurement protocol: ten target loads
plus active idle, overall efficiency as the ratio of sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hwexp.testbed import TestbedServer
from repro.metrics.ep import TARGET_LOADS_DESCENDING
from repro.power.governors import FixedFrequencyGovernor, Governor, OndemandGovernor
from repro.power.server import ServerPowerModel
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner

#: Sentinel frequency key for the ondemand governor column.
ONDEMAND = "ondemand"


@dataclass(frozen=True)
class SweepCell:
    """One (memory-per-core, frequency) measurement."""

    memory_per_core_gb: float
    frequency: Union[float, str]
    overall_efficiency: float
    peak_power_w: float
    idle_power_w: float
    max_throughput_ops: float

    @property
    def is_ondemand(self) -> bool:
        return isinstance(self.frequency, str)


@dataclass
class SweepResult:
    """The full grid for one server."""

    server: TestbedServer
    cells: List[SweepCell]

    def cell(
        self, memory_per_core_gb: float, frequency: Union[float, str]
    ) -> SweepCell:
        """Look up one grid cell (frequency may be "ondemand")."""
        for cell in self.cells:
            if abs(cell.memory_per_core_gb - memory_per_core_gb) > 1e-9:
                continue
            if cell.frequency == frequency:
                return cell
            if (
                not cell.is_ondemand
                and not isinstance(frequency, str)
                and abs(float(cell.frequency) - float(frequency)) < 1e-9
            ):
                return cell
        raise KeyError((memory_per_core_gb, frequency))

    def efficiency_by_memory(
        self, frequency: Union[float, str]
    ) -> Dict[float, float]:
        """EE per memory-per-core at one frequency (one Fig. 18-20 line)."""
        return {
            cell.memory_per_core_gb: cell.overall_efficiency
            for cell in self.cells
            if cell.frequency == frequency
        }

    def efficiency_by_frequency(self, memory_per_core_gb: float) -> Dict[float, float]:
        """EE per pinned frequency at one memory configuration."""
        return {
            float(cell.frequency): cell.overall_efficiency
            for cell in self.cells
            if cell.memory_per_core_gb == memory_per_core_gb
            and not cell.is_ondemand
        }

    def peak_power_by_frequency(self, memory_per_core_gb: float) -> Dict[float, float]:
        """Peak power per pinned frequency (the Fig. 21 right axis)."""
        return {
            float(cell.frequency): cell.peak_power_w
            for cell in self.cells
            if cell.memory_per_core_gb == memory_per_core_gb
            and not cell.is_ondemand
        }

    def best_memory_per_core(self) -> float:
        """The EE-best memory configuration at the top frequency."""
        top = max(
            float(cell.frequency) for cell in self.cells if not cell.is_ondemand
        )
        by_memory = self.efficiency_by_memory(top)
        return max(by_memory, key=by_memory.get)

    def ondemand_tracks_top_frequency(self, rtol: float = 0.06) -> bool:
        """Section V.B: ondemand EE within ``rtol`` of the top frequency's."""
        top = max(
            float(cell.frequency) for cell in self.cells if not cell.is_ondemand
        )
        for cell in self.cells:
            if not cell.is_ondemand:
                continue
            reference = self.cell(cell.memory_per_core_gb, top)
            if abs(cell.overall_efficiency - reference.overall_efficiency) > (
                rtol * reference.overall_efficiency
            ):
                return False
        return True


def _analytic_cell(
    server: TestbedServer,
    power_model: ServerPowerModel,
    memory_per_core_gb: float,
    governor: Governor,
    frequency_label: Union[float, str],
) -> SweepCell:
    """Evaluate one cell from the models directly (no event simulation)."""
    profile = server.profile_for(memory_per_core_gb)
    cpu = power_model.cpus[0]
    cores = server.total_cores
    top_frequency = governor.select_frequency(cpu, 1.0)
    max_ops = cores * profile.ops_per_second_per_core(top_frequency)

    total_ops = 0.0
    total_power = 0.0
    peak_power = 0.0
    for load in TARGET_LOADS_DESCENDING:
        frequency = governor.select_frequency(cpu, load)
        # At a pinned lower frequency the same offered load occupies
        # proportionally more core time.
        capacity = cores * profile.ops_per_second_per_core(frequency)
        offered = load * max_ops
        utilization = min(1.0, offered / capacity)
        achieved = min(offered, capacity)
        power = power_model.wall_power_w(utilization, frequency)
        total_ops += achieved
        total_power += power
        peak_power = max(peak_power, power)
    idle_frequency = governor.select_frequency(cpu, 0.0)
    idle_power = power_model.wall_power_w(0.0, idle_frequency)
    total_power += idle_power
    return SweepCell(
        memory_per_core_gb=memory_per_core_gb,
        frequency=frequency_label,
        overall_efficiency=total_ops / total_power,
        peak_power_w=peak_power,
        idle_power_w=idle_power,
        max_throughput_ops=max_ops,
    )


def _simulated_cell(
    server: TestbedServer,
    power_model: ServerPowerModel,
    memory_per_core_gb: float,
    governor: Governor,
    frequency_label: Union[float, str],
    plan: MeasurementPlan,
    seed: int,
) -> SweepCell:
    """Evaluate one cell through the discrete-event benchmark."""
    runner = SsjRunner(
        server=power_model,
        profile=server.profile_for(memory_per_core_gb),
        governor=governor,
        plan=plan,
        seed=seed,
    )
    report = runner.run()
    return SweepCell(
        memory_per_core_gb=memory_per_core_gb,
        frequency=frequency_label,
        overall_efficiency=report.overall_score(),
        peak_power_w=max(level.average_power_w for level in report.levels),
        idle_power_w=report.active_idle_power_w,
        max_throughput_ops=report.calibrated_max_ops_per_s,
    )


def run_sweep(
    server: TestbedServer,
    memory_per_core: Optional[Sequence[float]] = None,
    frequencies: Optional[Sequence[float]] = None,
    include_ondemand: bool = True,
    method: str = "analytic",
    plan: Optional[MeasurementPlan] = None,
    seed: int = 2016,
) -> SweepResult:
    """Run the full grid for one testbed server.

    ``method`` is ``"analytic"`` (deterministic model evaluation) or
    ``"simulate"`` (full discrete-event benchmark per cell).
    """
    if method not in ("analytic", "simulate"):
        raise ValueError("method must be 'analytic' or 'simulate'")
    memory_list = list(
        server.tested_memory_per_core if memory_per_core is None else memory_per_core
    )
    frequency_list = list(
        server.frequencies_ghz if frequencies is None else frequencies
    )
    if plan is None:
        plan = MeasurementPlan(interval_s=3.0, ramp_s=0.5)

    cells: List[SweepCell] = []
    for mpc in memory_list:
        capacity = server.memory_gb_for(mpc)
        power_model = server.power_model(memory_gb=capacity)
        columns: List[Tuple[Governor, Union[float, str]]] = [
            (FixedFrequencyGovernor(frequency_ghz=f), f) for f in frequency_list
        ]
        if include_ondemand:
            columns.append((OndemandGovernor(), ONDEMAND))
        for governor, label in columns:
            if method == "analytic":
                cells.append(
                    _analytic_cell(server, power_model, mpc, governor, label)
                )
            else:
                cells.append(
                    _simulated_cell(
                        server, power_model, mpc, governor, label, plan, seed
                    )
                )
    return SweepResult(server=server, cells=cells)
