"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP 660 editable
installs (`pip install -e .` with build isolation) cannot build an
editable wheel.  This shim keeps `python setup.py develop` and
`pip install -e . --no-build-isolation` working offline.
"""

from setuptools import setup

setup()
