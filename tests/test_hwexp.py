"""Tests for the testbed models and the Section V sweeps (Figs. 18-21)."""

import pytest

from repro.hwexp.perf_model import ServerThroughputProfile
from repro.hwexp.sweeps import run_sweep
from repro.hwexp.testbed import TESTBED, testbed_table
from repro.ssj.load_levels import MeasurementPlan


@pytest.fixture(scope="module")
def sweeps():
    """Analytic sweeps of the three servers the paper plots."""
    return {n: run_sweep(TESTBED[n]) for n in (1, 2, 4)}


class TestPerfModel:
    def _profile(self, **overrides):
        defaults = dict(
            ops_per_core_at_max=1000.0,
            max_frequency_ghz=2.4,
            compute_fraction=0.8,
            heap_demand_gb_per_core=2.0,
            memory_per_core_gb=4.0,
        )
        defaults.update(overrides)
        return ServerThroughputProfile(**defaults)

    def test_full_rate_at_top_frequency(self):
        profile = self._profile()
        assert profile.ops_per_second_per_core(2.4) == pytest.approx(1000.0)

    def test_sublinear_frequency_scaling(self):
        profile = self._profile()
        half_speed = profile.frequency_scaling(1.2)
        assert 0.5 < half_speed < 1.0  # better than linear slowdown

    def test_fully_compute_bound_scales_linearly(self):
        profile = self._profile(compute_fraction=1.0)
        assert profile.frequency_scaling(1.2) == pytest.approx(0.5)

    def test_no_gc_penalty_with_ample_memory(self):
        assert self._profile(memory_per_core_gb=8.0).gc_factor() == 1.0

    def test_gc_penalty_grows_superlinearly(self):
        tight = self._profile(memory_per_core_gb=1.5).gc_factor()
        tighter = self._profile(memory_per_core_gb=1.0).gc_factor()
        starved = self._profile(memory_per_core_gb=0.5).gc_factor()
        assert 1.0 > tight > tighter > starved
        assert (1 / starved - 1 / tighter) > (1 / tighter - 1 / tight)

    def test_with_memory_copies(self):
        profile = self._profile()
        other = profile.with_memory(1.0)
        assert other.memory_per_core_gb == 1.0
        assert profile.memory_per_core_gb == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._profile(compute_fraction=0.0)
        with pytest.raises(ValueError):
            self._profile(ops_per_core_at_max=-1.0)


class TestTestbed:
    def test_table2_configurations(self):
        assert TESTBED[1].total_cores == 32
        assert TESTBED[2].total_cores == 4
        assert TESTBED[3].total_cores == 12
        assert TESTBED[4].total_cores == 12
        assert TESTBED[1].tdp_w == 115.0
        assert TESTBED[4].stock_memory_gb == 192

    def test_table_rows_render(self):
        rows = testbed_table()
        assert len(rows) == 4
        assert rows[0][0] == "#1"

    def test_power_models_build_at_every_tested_memory(self):
        for server in TESTBED.values():
            for mpc in server.tested_memory_per_core:
                model = server.power_model(server.memory_gb_for(mpc))
                assert model.idle_wall_power_w() > 0.0

    def test_memory_rounding_is_populatable(self):
        assert TESTBED[3].memory_gb_for(2.67) == 32
        assert TESTBED[4].memory_gb_for(16.0) == 192

    def test_dimm_counts_grow_with_capacity(self):
        small = TESTBED[4].power_model(TESTBED[4].memory_gb_for(1.33))
        large = TESTBED[4].power_model(TESTBED[4].memory_gb_for(16.0))
        assert large.memory.dimm_count > small.memory.dimm_count


class TestSweepShapes:
    @pytest.mark.parametrize("number,paper_best", [(1, 1.75), (2, 4.0), (4, 2.67)])
    def test_best_memory_matches_paper(self, sweeps, number, paper_best):
        assert sweeps[number].best_memory_per_core() == pytest.approx(paper_best)

    @pytest.mark.parametrize("number", [1, 2, 4])
    def test_efficiency_monotone_in_frequency(self, sweeps, number):
        sweep = sweeps[number]
        for mpc in sweep.server.tested_memory_per_core:
            by_frequency = sweep.efficiency_by_frequency(mpc)
            frequencies = sorted(by_frequency)
            values = [by_frequency[f] for f in frequencies]
            assert values == sorted(values), (number, mpc)

    @pytest.mark.parametrize("number", [1, 2, 4])
    def test_power_monotone_in_frequency(self, sweeps, number):
        sweep = sweeps[number]
        for mpc in sweep.server.tested_memory_per_core:
            by_frequency = sweep.peak_power_by_frequency(mpc)
            frequencies = sorted(by_frequency)
            values = [by_frequency[f] for f in frequencies]
            assert values == sorted(values)

    @pytest.mark.parametrize("number", [1, 2, 4])
    def test_ondemand_tracks_top_frequency(self, sweeps, number):
        assert sweeps[number].ondemand_tracks_top_frequency(rtol=0.06)

    def test_server2_overprovisioning_drop(self, sweeps):
        """Paper: EE falls 10.6% from 4 to 8 GB/core on server #2."""
        by_memory = sweeps[2].efficiency_by_memory(1.8)
        drop = by_memory[8.0] / by_memory[4.0] - 1.0
        assert drop == pytest.approx(-0.106, abs=0.05)

    def test_server4_overprovisioning_drops(self, sweeps):
        """Paper: -4.6% at 8 GB/core and -11.1% at 16, from 2.67."""
        by_memory = sweeps[4].efficiency_by_memory(2.4)
        drop_8 = by_memory[8.0] / by_memory[2.67] - 1.0
        drop_16 = by_memory[16.0] / by_memory[2.67] - 1.0
        assert -0.10 < drop_8 < 0.0
        assert -0.20 < drop_16 < -0.05
        assert drop_16 < drop_8

    def test_power_rises_with_memory_at_fixed_frequency(self, sweeps):
        """Fig. 21: more DIMMs draw more power at every frequency."""
        sweep = sweeps[4]
        for frequency in (1.2, 2.4):
            powers = [
                sweep.cell(mpc, frequency).peak_power_w
                for mpc in (1.33, 2.67, 8.0, 16.0)
            ]
            assert powers == sorted(powers)

    def test_ondemand_power_close_to_top_frequency(self, sweeps):
        """Fig. 21: ondemand consumes about the same as the top pin."""
        sweep = sweeps[4]
        for mpc in sweep.server.tested_memory_per_core:
            ondemand = sweep.cell(mpc, "ondemand").peak_power_w
            top = sweep.cell(mpc, 2.4).peak_power_w
            assert ondemand == pytest.approx(top, rel=0.05)


class TestSimulatedSweep:
    def test_simulated_matches_analytic_at_one_cell(self):
        server = TESTBED[2]
        analytic = run_sweep(server, memory_per_core=[4.0], frequencies=[1.8],
                             include_ondemand=False)
        simulated = run_sweep(
            server,
            memory_per_core=[4.0],
            frequencies=[1.8],
            include_ondemand=False,
            method="simulate",
            plan=MeasurementPlan(interval_s=4.0, ramp_s=0.5),
        )
        a = analytic.cell(4.0, 1.8).overall_efficiency
        s = simulated.cell(4.0, 1.8).overall_efficiency
        assert s == pytest.approx(a, rel=0.10)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            run_sweep(TESTBED[2], method="magic")
