"""Unit tests for the correlation coefficients."""

import numpy as np
import pytest

from repro.metrics.correlation import pearson, spearman


class TestPearson:
    def test_perfect_positive(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson(x, [2 * v + 1 for v in x]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson(x, [-3 * v for v in x]) == pytest.approx(-1.0)

    def test_independent_series_near_zero(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson(x, y)) < 0.05

    def test_symmetry(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=50)
        y = x + rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_scale_invariance(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=60)
        y = x + rng.normal(size=60)
        assert pearson(x, y) == pytest.approx(pearson(x * 100 + 7, y * 0.01 - 3))

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            pearson([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_needs_two_observations(self):
        with pytest.raises(ValueError, match="two"):
            pearson([1.0], [2.0])


class TestSpearman:
    def test_monotone_nonlinear_relationship_is_one(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [v**3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_pearson_would_not_be_one(self):
        x = np.linspace(1, 10, 30)
        y = np.exp(x)
        assert spearman(x, y) == pytest.approx(1.0)
        assert pearson(x, y) < 1.0

    def test_ties_share_average_rank(self):
        # With ties handled properly the coefficient stays within [-1, 1].
        x = [1.0, 2.0, 2.0, 3.0]
        y = [1.0, 2.0, 3.0, 4.0]
        value = spearman(x, y)
        assert -1.0 <= value <= 1.0
        assert value > 0.9

    def test_reversal_is_minus_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert spearman(x, x[::-1]) == pytest.approx(-1.0)
