"""Tests for workload variants and per-workload characterization."""

import pytest

from repro.hwexp.testbed import TESTBED
from repro.hwexp.workloads import characterize, compare_workloads, ep_spread
from repro.ssj.transactions import validate_mix
from repro.ssj.variants import BATCH, CACHE, SSJ, VARIANTS, WEB, get_variant


class TestVariantDefinitions:
    def test_all_variants_have_valid_mixes(self):
        for variant in VARIANTS.values():
            validate_mix(variant.mix)

    def test_expected_catalog(self):
        assert set(VARIANTS) == {"ssj", "web", "batch", "cache"}

    def test_lookup(self):
        assert get_variant("web") is WEB
        with pytest.raises(KeyError, match="unknown workload"):
            get_variant("hpc")

    def test_personality_axes_differ(self):
        assert BATCH.memory_intensity > WEB.memory_intensity
        assert WEB.compute_fraction > BATCH.compute_fraction

    def test_parameter_validation(self):
        from repro.ssj.variants import WorkloadVariant

        with pytest.raises(ValueError):
            WorkloadVariant("x", SSJ.mix, memory_intensity=1.5,
                            compute_fraction=0.8)


class TestCharacterization:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_workloads(TESTBED[4], list(VARIANTS.values()))

    def test_every_workload_characterized(self, results):
        assert set(results) == set(VARIANTS)

    def test_ep_differs_across_workloads(self, results):
        """The Section V.C caveat: EP is workload dependent."""
        assert ep_spread(results) > 0.02

    def test_all_eps_physical(self, results):
        for outcome in results.values():
            assert 0.0 < outcome.ep < 2.0

    def test_memory_heavy_workload_raises_active_power(self):
        web = characterize(TESTBED[4], WEB)
        batch = characterize(TESTBED[4], BATCH)
        # Same platform, same idle; the memory-heavy workload draws
        # more at full load.
        assert batch.power_w[-1] > web.power_w[-1]
        assert batch.active_idle_w == pytest.approx(web.active_idle_w, rel=0.02)

    def test_curves_are_complete(self, results):
        for outcome in results.values():
            assert len(outcome.utilization) == 11
            assert len(outcome.power_w) == 11
            assert len(outcome.throughput_ops) == 10

    def test_simulated_matches_analytic(self):
        analytic = characterize(TESTBED[2], CACHE, method="analytic")
        simulated = characterize(TESTBED[2], CACHE, method="simulate")
        assert simulated.overall_ee == pytest.approx(
            analytic.overall_ee, rel=0.12
        )
        assert simulated.ep == pytest.approx(analytic.ep, abs=0.08)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            characterize(TESTBED[2], SSJ, method="magic")

    def test_empty_comparison_rejected(self):
        with pytest.raises(ValueError):
            ep_spread({})


class TestRunnerMixIntegration:
    def test_runner_accepts_custom_mix(self):
        from repro.power.governors import OndemandGovernor
        from repro.ssj.load_levels import MeasurementPlan
        from repro.ssj.runner import SsjRunner

        server = TESTBED[2]
        runner = SsjRunner(
            server=server.power_model(),
            profile=server.profile,
            governor=OndemandGovernor(),
            plan=MeasurementPlan(interval_s=2.0, ramp_s=0.5),
            mix=WEB.mix,
        )
        report = runner.run()
        assert len(report.levels) == 10
        assert report.overall_score() > 0.0
