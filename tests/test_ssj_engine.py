"""Unit tests for the discrete-event service engine."""

import numpy as np
import pytest

from repro.ssj.engine import (
    OPS_PER_UNIT_WORK,
    EngineResult,
    LinearThroughputProfile,
    ServiceEngine,
)
from repro.ssj.transactions import SSJ_MIX, validate_mix
from repro.ssj.workload import TransactionSource


def _engine(cores=4, rate=100.0, seed=1, capacity=None):
    return ServiceEngine(
        cores=cores,
        profile=LinearThroughputProfile(ops_at_1ghz=rate),
        rng=np.random.default_rng(seed),
        queue_capacity=capacity,
    )


def _arrivals(rate, horizon, seed=2):
    source = TransactionSource(
        rate_per_s=rate, rng=np.random.default_rng(seed)
    )
    return list(source.arrivals(horizon))


class TestEngineBasics:
    def test_no_arrivals_means_no_work(self):
        engine = _engine()
        result = engine.advance([], until=10.0, frequency_ghz=2.0)
        assert result.completed_transactions == 0
        assert result.utilization == pytest.approx(0.0)

    def test_clock_advances_to_window_end(self):
        engine = _engine()
        engine.advance([], until=5.0, frequency_ghz=2.0)
        assert engine.clock == pytest.approx(5.0)

    def test_cannot_go_backwards(self):
        engine = _engine()
        engine.advance([], until=5.0, frequency_ghz=2.0)
        with pytest.raises(ValueError, match="backwards"):
            engine.advance([], until=4.0, frequency_ghz=2.0)

    def test_arrival_outside_window_rejected(self):
        engine = _engine()
        mix = validate_mix(SSJ_MIX)
        with pytest.raises(ValueError, match="outside"):
            engine.advance([(10.0, mix[0])], until=5.0, frequency_ghz=2.0)


class TestThroughputAccounting:
    def test_light_load_completes_everything(self):
        engine = _engine(cores=8, rate=1000.0)
        arrivals = _arrivals(rate=20.0, horizon=50.0)
        result = engine.advance(arrivals, until=60.0, frequency_ghz=2.0)
        assert result.completed_transactions == len(arrivals)

    def test_ops_track_transaction_work(self):
        engine = _engine(cores=8, rate=1000.0)
        arrivals = _arrivals(rate=20.0, horizon=50.0)
        result = engine.advance(arrivals, until=80.0, frequency_ghz=2.0)
        expected = sum(tx.work_factor for _, tx in arrivals) * OPS_PER_UNIT_WORK
        assert result.completed_ops == pytest.approx(expected, rel=1e-9)

    def test_saturated_throughput_matches_capacity(self):
        cores, rate, f = 4, 500.0, 2.0
        engine = _engine(cores=cores, rate=rate, capacity=64)
        capacity_ops = cores * rate * f
        offered_tx = 2.0 * capacity_ops / OPS_PER_UNIT_WORK
        horizon = 60.0
        result = engine.advance(
            _arrivals(rate=offered_tx, horizon=horizon), horizon, f
        )
        assert result.throughput_ops_per_s == pytest.approx(capacity_ops, rel=0.05)

    def test_utilization_near_offered_load_in_open_loop(self):
        cores, rate, f = 16, 500.0, 2.0
        capacity_ops = cores * rate * f
        offered_fraction = 0.5
        offered_tx = offered_fraction * capacity_ops / OPS_PER_UNIT_WORK
        engine = _engine(cores=cores, rate=rate)
        horizon = 120.0
        result = engine.advance(
            _arrivals(rate=offered_tx, horizon=horizon), horizon, f
        )
        assert result.utilization == pytest.approx(offered_fraction, abs=0.05)


class TestFrequencyEffects:
    def test_lower_frequency_raises_utilization(self):
        arrivals = _arrivals(rate=30.0, horizon=60.0)
        fast = _engine(cores=8, rate=200.0, seed=3)
        slow = _engine(cores=8, rate=200.0, seed=3)
        fast_result = fast.advance(list(arrivals), 60.0, frequency_ghz=2.4)
        slow_result = slow.advance(list(arrivals), 60.0, frequency_ghz=1.2)
        assert slow_result.utilization > fast_result.utilization


class TestQueueBehaviour:
    def test_bounded_queue_drops_excess(self):
        engine = _engine(cores=1, rate=1.0, capacity=2)
        arrivals = _arrivals(rate=100.0, horizon=5.0)
        engine.advance(arrivals, 5.0, frequency_ghz=1.0)
        assert engine.dropped > 0

    def test_unbounded_queue_never_drops(self):
        engine = _engine(cores=1, rate=1.0, capacity=None)
        arrivals = _arrivals(rate=100.0, horizon=5.0)
        engine.advance(arrivals, 5.0, frequency_ghz=1.0)
        assert engine.dropped == 0

    def test_pending_carries_across_windows(self):
        engine = _engine(cores=1, rate=100.0)
        arrivals = _arrivals(rate=100.0, horizon=2.0)
        engine.advance(arrivals, 2.0, frequency_ghz=1.0)
        assert engine.pending > 0
        later = engine.advance([], 2000.0, frequency_ghz=1.0)
        assert engine.pending == 0
        assert later.completed_transactions > 0


class TestEngineResult:
    def test_merge_accumulates(self):
        a = EngineResult(duration_s=5.0, cores=4, completed_transactions=10,
                         completed_ops=1000.0, busy_core_seconds=8.0)
        b = EngineResult(duration_s=5.0, cores=4, completed_transactions=2,
                         completed_ops=200.0, busy_core_seconds=2.0)
        merged = a.merge(b)
        assert merged.duration_s == pytest.approx(10.0)
        assert merged.completed_ops == pytest.approx(1200.0)
        assert merged.utilization == pytest.approx(10.0 / 40.0)

    def test_merge_rejects_core_mismatch(self):
        a = EngineResult(duration_s=1.0, cores=4)
        b = EngineResult(duration_s=1.0, cores=8)
        with pytest.raises(ValueError):
            a.merge(b)
