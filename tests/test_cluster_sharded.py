"""Tests for the sharded, shared-memory, out-of-core fleet tier.

The contract is the same bit-identity bar the columnar engines are
held to: on overlapping scales the sharded summaries must equal the
columnar reductions float for float (same sequential sum order, same
int-vs-float zero types), with no tolerances anywhere in this file.
On top of that this suite pins the tier's own surface: the lazy
``TiledFleetView``, the eager-tiling memory budget, the column spill
store, the ``shard.worker`` fault site, and the windowed pooled
replay's serial == pooled equivalence.
"""

import warnings

import numpy as np
import pytest

from repro.cluster.batch_placement import BatchPlacementEngine, resolve_backend
from repro.cluster.batch_trace import BatchTraceReplay, resolve_trace_backend
from repro.cluster.fleet_arrays import (
    LAZY_TILE_THRESHOLD,
    FleetArrays,
    TiledFleetView,
    _interp_rows,
    tile_fleet,
)
from repro.cluster.placement import _utilization_for
from repro.cluster.sharded import (
    SHARDED_AUTO_THRESHOLD,
    ShardedFleetEngine,
    ShardedTraceReplay,
    _fold_continue,
    streamed_level_capacity,
)
from repro.cluster.trace import diurnal_trace
from repro.core.faults import FaultPlan, FaultSpec, install
from repro.core.resilience import TransientError
from repro.dataset.columns import ColumnSpillStore


@pytest.fixture(scope="module")
def base(corpus):
    return list(corpus.by_hw_year_range(2013, 2016))


@pytest.fixture(scope="module")
def view10k(base):
    return tile_fleet(base, 10_000, lazy=True)


@pytest.fixture(scope="module")
def columnar(view10k):
    return BatchPlacementEngine(list(view10k))


@pytest.fixture(scope="module")
def sharded(view10k):
    # Several shards, so carry continuation across boundaries is live.
    return ShardedFleetEngine(view10k, shard_size=4096)


@pytest.fixture(scope="module")
def capacity(view10k):
    return sum(
        level.ssj_ops
        for server in view10k
        for level in server.levels
        if level.target_load == 1.0
    )


def _summary_key(outcome):
    """Every observable scalar of a placement outcome, types included."""
    return (
        outcome.policy,
        outcome.demand_ops,
        outcome.placed_ops,
        type(outcome.placed_ops),
        outcome.total_power_w,
        type(outcome.total_power_w),
        outcome.unused_idle_power_w,
        outcome.servers_used,
        outcome.fleet_efficiency,
        outcome.satisfied(),
    )


FRACTIONS = [0.0, 0.03, 0.25, 0.6, 0.85, 1.0, 1.2]


class TestPlacementParity:
    @pytest.mark.parametrize("policy", ["pack-to-full", "ep-aware"])
    @pytest.mark.parametrize("power_off", [False, True])
    def test_summaries_match_columnar_at_10k(
        self, columnar, sharded, capacity, policy, power_off
    ):
        for fraction in FRACTIONS:
            demand = fraction * capacity
            ours = sharded.place(policy, demand, power_off)
            theirs = columnar.place(policy, demand, power_off)
            assert _summary_key(ours) == _summary_key(theirs)

    @pytest.mark.parametrize("policy", ["pack-to-full", "ep-aware"])
    def test_place_totals_match_columnar(
        self, columnar, sharded, capacity, policy
    ):
        for fraction in FRACTIONS:
            demand = fraction * capacity
            assert sharded.place_totals(policy, demand) == (
                columnar.place_totals(policy, demand)
            )

    @pytest.mark.parametrize("policy", ["pack-to-full", "ep-aware"])
    def test_cap_search_matches_columnar(self, columnar, sharded, policy):
        for cap_w in (5e4, 2e5, 1e6):
            ours = sharded.max_throughput_under_cap(cap_w, policy)
            theirs = columnar.max_throughput_under_cap(cap_w, policy)
            assert _summary_key(ours) == _summary_key(theirs)

    def test_negative_demand_raises(self, sharded):
        with pytest.raises(ValueError, match="negative"):
            sharded.place("ep-aware", -1.0)

    def test_unknown_policy_raises(self, sharded):
        with pytest.raises(ValueError, match="unknown policy"):
            sharded.place("round-robin", 100.0)

    def test_nonpositive_cap_raises(self, sharded):
        with pytest.raises(ValueError, match="positive"):
            sharded.max_throughput_under_cap(0.0)

    def test_zero_demand_zeros_are_ints(self, sharded):
        """The scalar paths return int 0 sums for an empty placement."""
        outcome = sharded.place("ep-aware", 0.0)
        assert outcome.placed_ops == 0 and type(outcome.placed_ops) is int
        assert outcome.servers_used == 0


class TestReplayParity:
    @pytest.fixture(scope="class")
    def small_view(self, base):
        return tile_fleet(base, 2000, lazy=True)

    @pytest.fixture(scope="class")
    def batch_replay(self, small_view):
        return BatchTraceReplay(BatchPlacementEngine(list(small_view)))

    @pytest.fixture(scope="class")
    def shard_replay(self, small_view):
        # Deliberately awkward shard/window sizes: uneven remainders on
        # both axes exercise the carry paths.
        engine = ShardedFleetEngine(small_view, shard_size=512)
        return ShardedTraceReplay(engine, window_steps=17)

    @pytest.mark.parametrize("policy", ["pack-to-full", "ep-aware"])
    @pytest.mark.parametrize("power_off", [False, True])
    def test_outcome_matches_columnar(
        self, batch_replay, shard_replay, policy, power_off
    ):
        trace = diurnal_trace(steps_per_day=96, noise=0.05, seed=7)
        assert shard_replay.replay(trace, policy, power_off) == (
            batch_replay.replay(trace, policy, power_off)
        )

    def test_compare_policies_matches_columnar(
        self, batch_replay, shard_replay
    ):
        ours = shard_replay.compare_policies()
        theirs = batch_replay.compare_policies()
        assert ours == theirs
        assert list(ours) == list(theirs)

    def test_pooled_equals_serial(self, shard_replay):
        trace = diurnal_trace(steps_per_day=24, noise=0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pooled = shard_replay.replay(trace, "ep-aware", jobs=2)
        assert pooled == shard_replay.replay(trace, "ep-aware", jobs=1)

    def test_jobs_validation(self, shard_replay):
        trace = diurnal_trace(steps_per_day=4, noise=0.0)
        with pytest.raises(ValueError, match="jobs"):
            shard_replay.replay(trace, jobs=0)
        with pytest.raises(ValueError, match="step_retries"):
            shard_replay.replay(trace, step_retries=-1)

    def test_unknown_policy_raises(self, shard_replay):
        with pytest.raises(ValueError, match="unknown policy"):
            shard_replay.replay(diurnal_trace(noise=0.0), "noop")

    def test_window_steps_validation(self, base):
        engine = ShardedFleetEngine(tile_fleet(base, 600, lazy=True))
        with pytest.raises(ValueError, match="window_steps"):
            ShardedTraceReplay(engine, window_steps=0)


class TestSpill:
    def test_spilled_engine_matches_in_ram(self, base, tmp_path, capacity):
        view = tile_fleet(base, 1500, lazy=True)
        store = ColumnSpillStore(tmp_path)
        spilled = ShardedFleetEngine(
            view, shard_size=640, spill=True, spill_store=store
        )
        in_ram = ShardedFleetEngine(view, shard_size=640, spill=False)
        assert spilled.spilled and not in_ram.spilled
        for fraction in (0.0, 0.4, 0.9, 1.1):
            demand = fraction * capacity / 10_000 * 1500
            for policy in ("pack-to-full", "ep-aware"):
                assert _summary_key(
                    spilled.place(policy, demand, True)
                ) == _summary_key(in_ram.place(policy, demand, True))

    def test_spill_files_are_reused(self, base, tmp_path):
        view = tile_fleet(base, 800, lazy=True)
        store = ColumnSpillStore(tmp_path)
        ShardedFleetEngine(view, spill=True, spill_store=store)
        files = sorted(p.name for p in tmp_path.rglob("*.npy"))
        assert files
        stamps = {p: p.stat().st_mtime_ns for p in tmp_path.rglob("*.npy")}
        ShardedFleetEngine(view, spill=True, spill_store=store)
        assert {
            p: p.stat().st_mtime_ns for p in tmp_path.rglob("*.npy")
        } == stamps

    def test_store_round_trip_and_clear(self, tmp_path):
        store = ColumnSpillStore(tmp_path)
        values = np.arange(12.0).reshape(3, 4)
        store.save("k", "col", values)
        assert store.has("k", "col")
        loaded = store.load("k", "col")
        assert isinstance(loaded, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded), values)
        eager = store.load("k", "col", mmap=False)
        assert not isinstance(eager, np.memmap)
        store.clear("k")
        assert not store.has("k", "col")

    def test_ensure_builds_once(self, tmp_path):
        store = ColumnSpillStore(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return np.ones(5)

        first = store.ensure("k", "ones", build)
        second = store.ensure("k", "ones", build)
        assert len(calls) == 1
        np.testing.assert_array_equal(np.asarray(first), np.asarray(second))


class TestTiledFleetView:
    def test_first_cycle_is_the_base_records(self, base):
        view = TiledFleetView(base, len(base) + 5)
        for i in range(len(base)):
            assert view[i] is base[i]

    def test_clone_ids_and_shared_levels(self, base):
        view = TiledFleetView(base, 3 * len(base))
        clone = view[len(base)]
        assert clone.result_id == f"{base[0].result_id}~1"
        assert clone.levels is base[0].levels
        assert view[2 * len(base) + 3].result_id == f"{base[3].result_id}~2"

    def test_matches_eager_tiling_exactly(self, base):
        count = len(base) + 37
        eager = tile_fleet(base, count, lazy=False)
        view = tile_fleet(base, count, lazy=True)
        assert isinstance(view, TiledFleetView)
        assert len(view) == count
        assert [r.result_id for r in view] == [r.result_id for r in eager]
        assert [r.result_id for r in view[10:30:3]] == [
            r.result_id for r in eager[10:30:3]
        ]

    def test_negative_indexing(self, base):
        view = TiledFleetView(base, 100)
        assert view[-1].result_id == view[99].result_id

    def test_index_errors(self, base):
        view = TiledFleetView(base, 10)
        with pytest.raises(IndexError):
            view[10]
        with pytest.raises(IndexError):
            view[-11]
        with pytest.raises(TypeError, match="integers or slices"):
            view["0"]
        with pytest.raises(TypeError, match="integers or slices"):
            view[True]

    def test_repr_mentions_scale(self, base):
        assert "10 servers" in repr(TiledFleetView(base, 10))


class TestTileFleetValidation:
    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError, match="empty"):
            tile_fleet([], 10)

    def test_nonpositive_count_raises(self, base):
        with pytest.raises(ValueError, match="positive"):
            tile_fleet(base, 0)
        with pytest.raises(ValueError, match="positive"):
            tile_fleet(base, -3)

    def test_non_int_count_raises(self, base):
        with pytest.raises(TypeError, match="int"):
            tile_fleet(base, 10.0)
        with pytest.raises(TypeError, match="int"):
            tile_fleet(base, True)

    def test_default_goes_lazy_at_threshold(self, base):
        assert isinstance(
            tile_fleet(base, LAZY_TILE_THRESHOLD), TiledFleetView
        )
        assert isinstance(tile_fleet(base, 100), list)

    def test_eager_budget_is_enforced(self, base):
        with pytest.raises(ValueError, match="sharded"):
            tile_fleet(base, 50_000, lazy=False, budget_bytes=1024)

    def test_budget_env_override(self, base, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_BUDGET_BYTES", "512")
        with pytest.raises(ValueError, match="REPRO_TILE_BUDGET_BYTES"):
            tile_fleet(base, 50_000, lazy=False)


class TestSequentialFolds:
    def test_fold_continue_equals_python_sum(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1e6, size=1000)
        total = 0.0
        for value in values:
            total = total + value
        carry = 0.0
        for start in (0, 17, 333, 334, 999, 1000):
            stop = min(1000, start + 350)
            carry = _fold_continue(carry, values[start:stop])
        chunked = 0.0
        edges = [0, 17, 350, 367, 684, 700, 1000]
        for lo, hi in zip(edges, edges[1:]):
            chunked = _fold_continue(chunked, values[lo:hi])
        assert chunked == total

    def test_streamed_level_capacity_matches_scalar_sum(self, base):
        for count in (1, len(base), 3 * len(base) + 7):
            fleet = tile_fleet(base, count, lazy=True)
            scalar = sum(
                level.ssj_ops
                for server in fleet
                for level in server.levels
                if level.target_load == 1.0
            )
            assert streamed_level_capacity(base, count) == scalar


class TestBackendRouting:
    def test_explicit_sharded_backend(self, base):
        engine = resolve_backend(tile_fleet(base, 300, lazy=True), "sharded")
        assert isinstance(engine, ShardedFleetEngine)

    def test_auto_keeps_columnar_for_small_views(self, view10k):
        assert isinstance(
            resolve_backend(view10k, "auto"), BatchPlacementEngine
        )

    def test_auto_goes_sharded_for_large_views(self, base):
        view = tile_fleet(base, SHARDED_AUTO_THRESHOLD, lazy=True)
        assert isinstance(resolve_backend(view, "auto"), ShardedFleetEngine)

    def test_unknown_backend_lists_sharded(self, base):
        with pytest.raises(ValueError, match="sharded"):
            resolve_backend(base, "gpu")

    def test_trace_backend_types(self, base):
        view = tile_fleet(base, 300, lazy=True)
        assert isinstance(
            resolve_trace_backend(view, "sharded"), ShardedTraceReplay
        )
        assert isinstance(
            resolve_trace_backend(view, "columnar"), BatchTraceReplay
        )
        assert resolve_trace_backend(view, "scalar") is None


class TestSchedulerStubs:
    def test_all_scheduler_entry_points_raise(self, sharded):
        for call in (
            lambda: sharded.first_fit_decreasing([]),
            lambda: sharded.peak_spot_aware([]),
            lambda: sharded.schedule("first-fit", []),
            lambda: sharded.schedule_power_w(None),
        ):
            with pytest.raises(ValueError, match="columnar"):
                call()


class TestShardWorkerFaults:
    @pytest.fixture(scope="class")
    def replay(self, base):
        engine = ShardedFleetEngine(tile_fleet(base, 600, lazy=True))
        return ShardedTraceReplay(engine, window_steps=8)

    def test_transient_fault_is_retried_serially(self, replay):
        trace = diurnal_trace(steps_per_day=12, noise=0.0)
        clean = replay.replay(trace, "ep-aware")
        plan = FaultPlan([FaultSpec(site="shard.worker", mode="fail-n",
                                    times=2)])
        with install(plan):
            assert replay.replay(trace, "ep-aware") == clean
        assert plan.fired("shard.worker") == 2

    def test_exhausted_retries_raise(self, replay):
        trace = diurnal_trace(steps_per_day=4, noise=0.0)
        plan = FaultPlan([FaultSpec(site="shard.worker", mode="fail")])
        with install(plan):
            with pytest.raises(TransientError):
                replay.replay(trace, "ep-aware", step_retries=1)

    def test_pooled_fault_is_retried(self, replay):
        trace = diurnal_trace(steps_per_day=8, noise=0.0)
        clean = replay.replay(trace, "ep-aware")
        plan = FaultPlan([FaultSpec(site="shard.worker")])
        with install(plan):
            assert replay.replay(trace, "ep-aware", jobs=2) == clean
        assert plan.fired("shard.worker") == 1


class TestUtilizationForGuards:
    """Satellite: guard-resolved rows are masked before the bisection."""

    def test_matches_scalar_bisection_everywhere(self, base):
        arrays = FleetArrays.from_records(base[:40])
        targets = []
        for record in arrays.records:
            cap = record.levels[-1].ssj_ops
            targets.append(cap * 0.37)
        batch = arrays.utilization_for(np.array(targets))
        for i, record in enumerate(arrays.records):
            assert batch[i] == _utilization_for(record, targets[i])

    def test_guard_values(self, base):
        arrays = FleetArrays.from_records(base[:8])
        caps = arrays.full_capacity
        assert np.all(arrays.utilization_for(0.0) == 0.0)
        assert np.all(arrays.utilization_for(-5.0) == 0.0)
        assert np.all(arrays.utilization_for(caps) == 1.0)
        assert np.all(arrays.utilization_for(caps * 2.0) == 1.0)

    def test_mixed_guard_and_open_rows(self, base):
        arrays = FleetArrays.from_records(base[:6])
        caps = arrays.full_capacity
        targets = np.array(
            [0.0, -1.0, caps[2] * 2.0, caps[3] * 0.5, caps[4], caps[5] * 0.9]
        )
        batch = arrays.utilization_for(targets)
        for i, record in enumerate(arrays.records):
            assert batch[i] == _utilization_for(record, float(targets[i]))


class TestInterpRowsMatrix:
    """Satellite: (M, T) queries equal per-row np.interp, bitwise."""

    def _table(self, base, m):
        arrays = FleetArrays.from_records(base[:m])
        return arrays.load_grid, arrays.ops

    def test_random_matrix_queries(self, base):
        grid, table = self._table(base, 25)
        # Queries live on the kernel's domain u >= grid[0] = 0.0 (the
        # callers clamp utilization); below it np.interp holds the left
        # endpoint while the kernel extrapolates the first segment.
        rng = np.random.default_rng(3)
        queries = rng.uniform(0.0, 1.4, size=(table.shape[0], 50))
        batch = _interp_rows(grid, table, queries)
        for i in range(table.shape[0]):
            expected = np.interp(queries[i], grid, table[i])
            assert np.array_equal(batch[i], expected)

    def test_right_endpoint_exact(self, base):
        """At and beyond grid[-1] the endpoint is returned verbatim."""
        grid, table = self._table(base, 25)
        queries = np.full((table.shape[0], 3), grid[-1])
        queries[:, 1] = grid[-1] * 1.5
        queries[:, 2] = 1e9
        batch = _interp_rows(grid, table, queries)
        for j in range(3):
            assert np.array_equal(batch[:, j], table[:, -1])

    def test_vector_and_scalar_shapes_agree_with_matrix(self, base):
        grid, table = self._table(base, 12)
        rng = np.random.default_rng(5)
        queries = rng.uniform(0.0, 1.1, size=table.shape[0])
        as_vector = _interp_rows(grid, table, queries)
        as_matrix = _interp_rows(grid, table, queries[:, None])
        assert np.array_equal(as_vector, as_matrix[:, 0])
        scalar = _interp_rows(grid, table, 0.5)
        matrix = _interp_rows(
            grid, table, np.full((table.shape[0], 1), 0.5)
        )
        assert np.array_equal(scalar, matrix[:, 0])

    def test_grid_knots_are_exact(self, base):
        grid, table = self._table(base, 12)
        queries = np.broadcast_to(grid, (table.shape[0], grid.size)).copy()
        batch = _interp_rows(grid, table, queries)
        assert np.array_equal(batch, table)
