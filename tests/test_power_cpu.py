"""Unit tests for the CPU power model and DVFS operating points."""

import pytest

from repro.power.cpu import CpuPowerModel, OperatingPoint, default_voltage_curve


def _cpu(**overrides):
    defaults = dict(
        tdp_w=100.0,
        cores=8,
        operating_points=default_voltage_curve([1.2, 1.6, 2.0, 2.4]),
        static_fraction=0.3,
        idle_state_residency=0.5,
    )
    defaults.update(overrides)
    return CpuPowerModel(**defaults)


class TestOperatingPoints:
    def test_voltage_curve_is_monotone(self):
        points = default_voltage_curve([1.0, 1.5, 2.0])
        voltages = [p.voltage_v for p in points]
        assert voltages == sorted(voltages)

    def test_voltage_endpoints(self):
        points = default_voltage_curve([1.0, 2.0], v_min=0.9, v_max=1.2)
        assert points[0].voltage_v == pytest.approx(0.9)
        assert points[-1].voltage_v == pytest.approx(1.2)

    def test_single_frequency_gets_max_voltage(self):
        points = default_voltage_curve([2.0], v_min=0.9, v_max=1.2)
        assert points[0].voltage_v == pytest.approx(1.2)

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            default_voltage_curve([])

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(frequency_ghz=-1.0, voltage_v=1.0)
        with pytest.raises(ValueError):
            OperatingPoint(frequency_ghz=1.0, voltage_v=0.0)

    def test_snap_to_nearest_pstate(self):
        cpu = _cpu()
        assert cpu.operating_point(1.7).frequency_ghz == pytest.approx(1.6)
        assert cpu.operating_point(5.0).frequency_ghz == pytest.approx(2.4)


class TestPower:
    def test_peak_power_equals_tdp(self):
        cpu = _cpu()
        assert cpu.peak_power_w() == pytest.approx(100.0)

    def test_power_increases_with_utilization(self):
        cpu = _cpu()
        powers = [cpu.power_w(u, 2.4) for u in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_power_increases_with_frequency(self):
        cpu = _cpu()
        powers = [cpu.power_w(0.8, f) for f in cpu.frequencies_ghz]
        assert powers == sorted(powers)

    def test_idle_power_is_static_share_only(self):
        cpu = _cpu(idle_state_residency=0.0)
        # At the top P-state with no C-states: idle = static fraction.
        assert cpu.idle_power_w(2.4) == pytest.approx(30.0)

    def test_cstates_cut_idle_power(self):
        shallow = _cpu(idle_state_residency=0.0)
        deep = _cpu(idle_state_residency=0.8)
        assert deep.idle_power_w(2.4) < shallow.idle_power_w(2.4)

    def test_full_load_unaffected_by_cstates(self):
        shallow = _cpu(idle_state_residency=0.0)
        deep = _cpu(idle_state_residency=0.8)
        assert deep.power_w(1.0, 2.4) == pytest.approx(shallow.power_w(1.0, 2.4))

    def test_utilization_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _cpu().power_w(1.1, 2.4)

    def test_default_operating_point_when_none_given(self):
        cpu = CpuPowerModel(tdp_w=50.0, cores=2)
        assert cpu.max_frequency_ghz == pytest.approx(2.0)


class TestValidation:
    def test_rejects_nonpositive_tdp(self):
        with pytest.raises(ValueError):
            _cpu(tdp_w=0.0)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            _cpu(cores=0)

    def test_rejects_static_fraction_of_one(self):
        with pytest.raises(ValueError):
            _cpu(static_fraction=1.0)
