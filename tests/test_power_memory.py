"""Unit tests for the DRAM power model and DIMM population."""

import pytest

from repro.power.memory import (
    DIMM_TYPES,
    DimmPowerModel,
    MemoryPowerModel,
    populate,
)


class TestDimm:
    def test_power_splits_background_and_active(self):
        dimm = DimmPowerModel(8, "DDR4", background_w=2.0, active_w=3.0)
        assert dimm.power_w(0.0) == pytest.approx(2.0)
        assert dimm.power_w(1.0) == pytest.approx(5.0)
        assert dimm.power_w(0.5) == pytest.approx(3.5)

    def test_rejects_out_of_range_intensity(self):
        dimm = DIMM_TYPES["DDR4-16G"]
        with pytest.raises(ValueError):
            dimm.power_w(1.5)

    def test_rejects_invalid_capacity(self):
        with pytest.raises(ValueError):
            DimmPowerModel(0, "DDR4", background_w=1.0, active_w=1.0)

    def test_ddr4_draws_less_than_ddr3_per_gb(self):
        ddr3 = DIMM_TYPES["DDR3-8G"]
        ddr4 = DIMM_TYPES["DDR4-8G"]
        assert ddr4.background_w < ddr3.background_w


class TestMemorySubsystem:
    def test_capacity_is_count_times_size(self):
        memory = MemoryPowerModel(dimm=DIMM_TYPES["DDR4-16G"], dimm_count=12)
        assert memory.capacity_gb == 192

    def test_power_scales_with_dimm_count(self):
        one = MemoryPowerModel(dimm=DIMM_TYPES["DDR4-16G"], dimm_count=1)
        four = MemoryPowerModel(dimm=DIMM_TYPES["DDR4-16G"], dimm_count=4)
        assert four.power_w(0.5) == pytest.approx(4 * one.power_w(0.5))

    def test_background_power_is_zero_intensity_power(self):
        memory = MemoryPowerModel(dimm=DIMM_TYPES["DDR3-8G"], dimm_count=8)
        assert memory.background_power_w() == pytest.approx(memory.power_w(0.0))

    def test_rejects_zero_dimms(self):
        with pytest.raises(ValueError):
            MemoryPowerModel(dimm=DIMM_TYPES["DDR4-16G"], dimm_count=0)


class TestPopulate:
    def test_table2_configurations(self):
        # 192 GB as 12 x 16 GB (server #4).
        memory = populate(192, "DDR4", preferred_dimm_gb=16)
        assert memory.dimm.capacity_gb == 16
        assert memory.dimm_count == 12

    def test_respects_preferred_size(self):
        memory = populate(64, "DDR3", preferred_dimm_gb=8)
        assert memory.dimm.capacity_gb == 8
        assert memory.dimm_count == 8

    def test_falls_back_to_smaller_dimms(self):
        memory = populate(12, "DDR4", preferred_dimm_gb=16)
        assert memory.capacity_gb == 12

    def test_more_installed_capacity_draws_more_background_power(self):
        small = populate(32, "DDR4", preferred_dimm_gb=16)
        large = populate(192, "DDR4", preferred_dimm_gb=16)
        assert large.background_power_w() > small.background_power_w()

    def test_unknown_generation_rejected(self):
        with pytest.raises(ValueError, match="generation"):
            populate(64, "HBM3")

    def test_impossible_capacity_rejected(self):
        with pytest.raises(ValueError):
            populate(7, "DDR4")
