"""Tests for peak-spot shifting (Fig. 16), asynchrony (Section IV.B),
and the regression study (Eq. 2)."""

import pytest

from repro.analysis.asynchrony import (
    asynchrony_report,
    rank_correlation,
    year_share_in_top,
)
from repro.analysis.peak_shift import (
    era_comparison,
    first_diverse_year,
    peak_spot_shares,
    peak_spot_trend,
    spot_counts,
    total_spots,
    wong_comparison,
)
from repro.analysis.regression_study import ep_score_correlation, idle_regression


class TestPeakShift:
    def test_total_spots(self, corpus):
        assert total_spots(corpus) == 478

    def test_shares_match_section_4a(self, corpus):
        shares = peak_spot_shares(corpus)
        assert shares[1.0] == pytest.approx(0.6925, abs=0.015)
        assert shares[0.7] == pytest.approx(0.1381, abs=0.01)
        assert shares[0.8] == pytest.approx(0.1172, abs=0.01)

    def test_diversity_starts_2010(self, corpus):
        assert first_diverse_year(corpus) == 2010

    def test_trend_rows_normalized(self, corpus):
        trend = peak_spot_trend(corpus)
        for year, shares in trend.items():
            assert sum(shares.values()) == pytest.approx(1.0, abs=0.05)

    def test_era_comparison(self, corpus):
        early, late = era_comparison(corpus)
        assert early.servers == 421
        assert late.servers == 56
        assert early.shares[1.0] == pytest.approx(0.7571, abs=0.02)
        assert late.shares[1.0] == pytest.approx(0.2321, abs=0.02)
        assert late.shares[0.8] == pytest.approx(0.3571, abs=0.02)
        assert late.shares[0.7] == pytest.approx(0.2679, abs=0.02)

    def test_wong_rebuttal(self, corpus):
        comparison = wong_comparison(corpus)
        assert comparison["share_100"] > 0.6
        assert comparison["share_60"] < 0.03
        assert comparison["count_60"] == 9

    def test_spot_counts_by_year_sum(self, corpus):
        per_year = sum(
            sum(spot_counts(corpus.by_hw_year(year)).values())
            for year in corpus.hw_years()
        )
        assert per_year == total_spots(corpus)


class TestAsynchrony:
    def test_2012_dominates_top_ep(self, corpus):
        report = asynchrony_report(corpus)
        assert report.top_ep_share_2012 > 0.6
        assert report.ep_overrepresentation > 2.0

    def test_2012_minor_in_top_ee(self, corpus):
        report = asynchrony_report(corpus)
        assert report.top_ee_share_2012 < 0.3
        assert report.top_ee_share_2012 < report.top_ep_share_2012

    def test_small_overlap(self, corpus):
        report = asynchrony_report(corpus)
        assert report.overlap_fraction < 0.40

    def test_all_recent_servers_in_top_ee(self, corpus):
        report = asynchrony_report(corpus)
        assert report.all_recent_in_top_ee
        assert report.recent_servers == 30

    def test_year_shares_sum_to_one(self, corpus):
        shares = year_share_in_top(corpus, "ep")
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_key_rejected(self, corpus):
        with pytest.raises(ValueError):
            year_share_in_top(corpus, "watts")

    def test_rank_correlation_positive_but_imperfect(self, corpus):
        value = rank_correlation(corpus)
        assert 0.3 < value < 0.95


class TestIdleRegression:
    def test_strong_negative_correlation(self, corpus):
        regression = idle_regression(corpus)
        assert regression.correlation == pytest.approx(-0.92, abs=0.04)

    def test_fit_near_eq2(self, corpus):
        regression = idle_regression(corpus)
        assert regression.fit.amplitude == pytest.approx(1.2969, abs=0.12)
        assert regression.fit.rate == pytest.approx(-2.06, abs=0.35)
        assert regression.fit.r_squared > 0.85

    def test_prediction_at_five_percent_idle(self, corpus):
        regression = idle_regression(corpus)
        assert regression.predicted_ep(0.05) == pytest.approx(1.17, abs=0.08)

    def test_ceiling_near_1297(self, corpus):
        regression = idle_regression(corpus)
        assert regression.ceiling == pytest.approx(1.297, abs=0.12)

    def test_score_correlation(self, corpus):
        assert ep_score_correlation(corpus) == pytest.approx(0.741, abs=0.08)
