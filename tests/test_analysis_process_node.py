"""Tests for the lithography-node analysis (Section III.B)."""

import pytest

from repro.analysis.process_node import (
    ep_by_process_node,
    node_ep_correlation,
    shrink_regressions,
)


class TestProcessNode:
    def test_nodes_present(self, corpus):
        stats = ep_by_process_node(corpus)
        nodes = [stat.process_nm for stat in stats]
        assert nodes == sorted(nodes, reverse=True)
        assert 90 in nodes and 14 in nodes

    def test_counts_cover_known_codenames(self, corpus):
        from repro.power.microarch import Codename

        stats = ep_by_process_node(corpus)
        total = sum(stat.count for stat in stats)
        unknown = len(corpus.by_codename(Codename.UNKNOWN))
        assert total == len(corpus) - unknown

    def test_finer_nodes_are_usually_more_proportional(self, corpus):
        """The 'usually' half of the Section III.B claim."""
        assert node_ep_correlation(corpus) > 0.5
        stats = {s.process_nm: s.avg_ep for s in ep_by_process_node(corpus)}
        assert stats[32] > stats[45] > stats[65]

    def test_ivy_bridge_regression_is_detected(self, corpus):
        """The 'maybe lower even if finer' half, with the named case."""
        regressions = shrink_regressions(corpus)
        pairs = {(new, old) for new, old, _deficit in regressions}
        assert ("Ivy Bridge", "Sandy Bridge") in pairs
        deficits = {
            (new, old): deficit for new, old, deficit in regressions
        }
        assert deficits[("Ivy Bridge", "Sandy Bridge")] == pytest.approx(
            0.04, abs=0.04
        )
