"""Tests for the fault-tolerance primitives in repro.core.resilience."""

import time

import pytest

from repro.core.resilience import (
    Attempted,
    BuildError,
    BuildTimeout,
    CacheError,
    DataError,
    FailureLedger,
    FailureRecord,
    ReproError,
    RetryPolicy,
    TransientError,
    call_with_retry,
    classify,
    exception_chain,
    failure_record,
    quarantine_record,
    run_with_timeout,
)


class TestTaxonomy:
    @pytest.mark.parametrize(
        "leaf", [TransientError, DataError, BuildError, CacheError]
    )
    def test_leaves_are_repro_errors(self, leaf):
        assert issubclass(leaf, ReproError)
        assert issubclass(leaf, Exception)

    def test_timeout_is_transient(self):
        error = BuildTimeout("builder.fig3", 1.5)
        assert isinstance(error, TransientError)
        assert error.site == "builder.fig3"
        assert error.timeout_s == 1.5
        assert "1.5s" in str(error)

    @pytest.mark.parametrize(
        ("error", "bucket"),
        [
            (TransientError("x"), "transient"),
            (BuildTimeout("s", 1.0), "transient"),
            (DataError("x"), "data"),
            (BuildError("x"), "build"),
            (CacheError("x"), "cache"),
            (OSError(28, "disk full"), "transient"),
            (TimeoutError("x"), "transient"),
            (ValueError("x"), "build"),
            (KeyError("x"), "build"),
        ],
    )
    def test_classification(self, error, bucket):
        assert classify(error) == bucket

    def test_exception_chain_follows_cause(self):
        try:
            try:
                raise OSError(28, "disk full")
            except OSError as inner:
                raise CacheError("store failed") from inner
        except CacheError as outer:
            chain = exception_chain(outer)
        assert len(chain) == 2
        assert chain[0].startswith("CacheError")
        assert chain[1].startswith("OSError")

    def test_exception_chain_handles_cycles(self):
        error = ValueError("loop")
        error.__context__ = error
        assert exception_chain(error) == ("ValueError: loop",)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-1.0)

    def test_schedule_is_deterministic(self):
        first = RetryPolicy(attempts=5, seed=7)
        second = RetryPolicy(attempts=5, seed=7)
        assert first.delays("builder.fig3") == second.delays("builder.fig3")

    def test_schedule_depends_on_seed_and_site(self):
        base = RetryPolicy(attempts=5, seed=0)
        assert base.delays("a") != RetryPolicy(attempts=5, seed=1).delays("a")
        assert base.delays("a") != base.delays("b")

    def test_delays_bounded_and_jittered(self):
        policy = RetryPolicy(
            attempts=8, base_delay_s=0.1, backoff=2.0,
            jitter=0.5, max_delay_s=0.4,
        )
        for attempt in range(1, policy.attempts):
            raw = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.delay_s("site", attempt)
            assert 0.0 <= delay <= min(0.4, raw * 1.5)

    def test_no_retries_means_empty_schedule(self):
        assert RetryPolicy(attempts=1).delays("site") == ()

    def test_retryable_filter(self):
        policy = RetryPolicy(retry_on=(TransientError,))
        assert policy.retryable(TransientError("x"))
        assert policy.retryable(BuildTimeout("s", 1.0))
        assert not policy.retryable(DataError("x"))


class TestCallWithRetry:
    def test_first_try_success(self):
        outcome = call_with_retry(lambda: 42)
        assert isinstance(outcome, Attempted)
        assert outcome.value == 42
        assert outcome.attempts == 1

    def test_transient_failures_retried_on_the_policy_schedule(self):
        policy = RetryPolicy(attempts=3, base_delay_s=0.01, seed=3)
        calls = []
        sleeps = []

        def flaky():
            calls.append(None)
            if len(calls) < 3:
                raise TransientError("not yet")
            return "done"

        outcome = call_with_retry(
            flaky, policy, site="s", sleep=sleeps.append
        )
        assert outcome.value == "done"
        assert outcome.attempts == 3
        assert tuple(sleeps) == policy.delays("s")

    def test_non_retryable_error_raises_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.0)
        calls = []

        def broken():
            calls.append(None)
            raise DataError("bad row")

        with pytest.raises(DataError):
            call_with_retry(broken, policy, site="s", sleep=lambda _: None)
        assert len(calls) == 1

    def test_exhausted_attempts_reraise_the_last_error(self):
        policy = RetryPolicy(attempts=2, base_delay_s=0.0)

        def always():
            raise TransientError("still down")

        with pytest.raises(TransientError, match="still down"):
            call_with_retry(always, policy, site="s", sleep=lambda _: None)


class TestRunWithTimeout:
    def test_no_budget_runs_inline(self):
        assert run_with_timeout(lambda: "fast", None) == "fast"

    def test_fast_call_within_budget(self):
        assert run_with_timeout(lambda: 7, 5.0) == 7

    def test_overrun_raises_build_timeout(self):
        with pytest.raises(BuildTimeout) as caught:
            run_with_timeout(lambda: time.sleep(5.0), 0.05, site="builder.x")
        assert caught.value.site == "builder.x"
        assert caught.value.timeout_s == 0.05

    def test_callee_error_propagates(self):
        def boom():
            raise DataError("inside")

        with pytest.raises(DataError, match="inside"):
            run_with_timeout(boom, 5.0)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            run_with_timeout(lambda: None, 0.0)


class TestFailureLedger:
    def _root(self, artifact_id="fig3", elapsed_s=0.1):
        return failure_record(
            artifact_id, BuildError("went wrong"), attempts=2,
            elapsed_s=elapsed_s,
        )

    def test_failure_record_from_exception(self):
        record = self._root()
        assert record.artifact_id == "fig3"
        assert record.error_type == "BuildError"
        assert record.taxonomy == "build"
        assert record.attempts == 2
        assert not record.is_quarantine
        assert record.chain == ("BuildError: went wrong",)

    def test_quarantine_record(self):
        record = quarantine_record("fig20", "sweep:4")
        assert record.is_quarantine
        assert record.quarantined_by == "sweep:4"
        assert record.attempts == 0
        assert record.taxonomy == "quarantine"

    def test_signature_excludes_wall_time(self):
        assert self._root(elapsed_s=0.1).signature() == self._root(
            elapsed_s=9.9
        ).signature()

    def test_ledger_ids_and_flags(self):
        ledger = FailureLedger()
        assert not ledger
        ledger.add(self._root("fig5"))
        ledger.add(quarantine_record("fig20", "fig5"))
        assert len(ledger) == 2
        assert ledger.root_ids == ("fig5",)
        assert ledger.quarantined_ids == ("fig20",)
        assert ledger.failed_ids == ("fig5", "fig20")

    def test_ledger_signature_is_order_independent(self):
        forward, backward = FailureLedger(), FailureLedger()
        records = [self._root("fig5"), quarantine_record("fig20", "fig5")]
        for record in records:
            forward.add(record)
        for record in reversed(records):
            backward.add(record)
        assert forward.signature() == backward.signature()

    def test_render(self):
        ledger = FailureLedger()
        assert "empty" in ledger.render()
        ledger.add(self._root("fig5"))
        ledger.add(quarantine_record("fig20", "fig5"))
        rendered = ledger.render()
        assert "fig5: BuildError [build]" in rendered
        assert "fig20: quarantined (upstream fig5 failed)" in rendered

    def test_to_dict_round_trips_fields(self):
        record = self._root()
        entry = record.to_dict()
        assert entry["artifact_id"] == "fig3"
        assert entry["taxonomy"] == "build"
        assert FailureLedger([record]).to_dict() == {"records": [entry]}
