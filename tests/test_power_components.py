"""Unit tests for disk, fan, and PSU models."""

import pytest

from repro.power.components import SAS_10K, SATA_SSD, DiskPowerModel, FanPowerModel
from repro.power.psu import PsuModel


class TestDisks:
    def test_idle_draw_without_io(self):
        assert SAS_10K.power_w(0.0) == pytest.approx(SAS_10K.idle_w)

    def test_active_adds_on_top(self):
        assert SAS_10K.power_w(1.0) == pytest.approx(
            SAS_10K.idle_w + SAS_10K.active_w
        )

    def test_ssd_idles_below_spinner(self):
        assert SATA_SSD.idle_w < SAS_10K.idle_w

    def test_intensity_bounds(self):
        with pytest.raises(ValueError):
            SAS_10K.power_w(-0.1)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            DiskPowerModel(kind="bad", idle_w=-1.0, active_w=2.0)


class TestFans:
    def test_power_monotone_in_thermal_load(self):
        fan = FanPowerModel(base_w=8.0, max_w=30.0)
        powers = [fan.power_w(u) for u in (0.0, 0.3, 0.6, 1.0)]
        assert powers == sorted(powers)

    def test_endpoints(self):
        fan = FanPowerModel(base_w=8.0, max_w=30.0)
        assert fan.power_w(0.0) == pytest.approx(8.0)
        assert fan.power_w(1.0) == pytest.approx(30.0)

    def test_cubic_shape_is_convex(self):
        fan = FanPowerModel(base_w=0.0, max_w=30.0)
        # Power gained in the top half exceeds the bottom half.
        assert (fan.power_w(1.0) - fan.power_w(0.5)) > (
            fan.power_w(0.5) - fan.power_w(0.0)
        )

    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(ValueError):
            FanPowerModel(base_w=30.0, max_w=8.0)


class TestPsu:
    def test_efficiency_peaks_near_half_load(self):
        psu = PsuModel(rated_w=500.0)
        assert psu.efficiency(250.0) > psu.efficiency(50.0)
        assert psu.efficiency(250.0) >= psu.efficiency(500.0)

    def test_wall_power_exceeds_dc_load(self):
        psu = PsuModel(rated_w=500.0)
        assert psu.wall_power_w(200.0) > 200.0

    def test_zero_load_draws_zero(self):
        # The conversion-loss model applies to delivered power only.
        psu = PsuModel(rated_w=500.0)
        assert psu.wall_power_w(0.0) == 0.0

    def test_efficiency_floor_is_respected(self):
        psu = PsuModel(rated_w=500.0, floor=0.6)
        assert psu.efficiency(1.0) >= 0.6

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            PsuModel(rated_w=500.0).efficiency(-1.0)

    def test_invalid_rating_rejected(self):
        with pytest.raises(ValueError):
            PsuModel(rated_w=0.0)
