"""Property-based tests (hypothesis) on the metric and model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.curve_family import (
    CurveSolveError,
    PowerCurve,
    solve_curve,
    solve_knee_curve,
)
from repro.metrics.correlation import pearson, spearman
from repro.metrics.curves import ee_relative_curve, ideal_intersections
from repro.metrics.ep import (
    UTILIZATION_LEVELS,
    energy_proportionality,
    idle_power_fraction,
)
from repro.metrics.linearity import energy_ratio, linear_deviation
from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.psu import PsuModel

LEVELS = list(UTILIZATION_LEVELS)

#: Strategy: a plausible monotone normalized power curve.  Drawn as an
#: idle fraction plus non-negative increments, normalized to end at 1.
@st.composite
def monotone_curves(draw):
    idle = draw(st.floats(min_value=0.01, max_value=0.9))
    increments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=10,
            max_size=10,
        )
    )
    if sum(increments) <= 0.0:
        increments = [1.0] * 10
    powers = [idle]
    for step in increments:
        powers.append(powers[-1] + step)
    scale = powers[-1]
    return [p / scale for p in powers]


class TestEpInvariants:
    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_ep_bounded(self, powers):
        ep = energy_proportionality(LEVELS, powers)
        assert 0.0 <= ep < 2.0

    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_ep_upper_bound_from_idle(self, powers):
        # Area >= idle implies EP <= 2 * (1 - idle).
        ep = energy_proportionality(LEVELS, powers)
        idle = idle_power_fraction(LEVELS, powers)
        assert ep <= 2.0 * (1.0 - idle) + 1e-9

    @given(monotone_curves(), st.floats(min_value=0.1, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_ep_scale_invariant(self, powers, scale):
        a = energy_proportionality(LEVELS, powers)
        b = energy_proportionality(LEVELS, [p * scale for p in powers])
        assert abs(a - b) < 1e-9

    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_er_and_ep_agree_on_ordering_with_linear(self, powers):
        ep = energy_proportionality(LEVELS, powers)
        er = energy_ratio(LEVELS, powers)
        # Both compare the same area against the ideal area.
        assert (ep > 1.0) == (er > 1.0)

    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_relative_ee_anchored_at_one(self, powers):
        rel = ee_relative_curve(LEVELS, powers)
        assert abs(rel[-1] - 1.0) < 1e-9
        assert rel[0] == 0.0

    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_intersections_strictly_interior(self, powers):
        for crossing in ideal_intersections(LEVELS, powers):
            assert 0.0 < crossing < 1.0

    @given(monotone_curves())
    @settings(max_examples=200, deadline=None)
    def test_ld_zero_only_matters_directionally(self, powers):
        # LD and EP - (1 - idle) must have opposite signs: bowing above
        # the chord always costs proportionality.
        ep = energy_proportionality(LEVELS, powers)
        idle = idle_power_fraction(LEVELS, powers)
        ld = linear_deviation(LEVELS, powers)
        linear_ep = energy_proportionality(
            LEVELS, [idle + (1 - idle) * u for u in LEVELS]
        )
        if abs(ld) > 1e-9:
            assert (ld > 0) == (ep < linear_ep)


class TestSolverProperties:
    @given(
        st.floats(min_value=0.25, max_value=0.95),
        st.floats(min_value=0.05, max_value=0.6),
    )
    @settings(max_examples=120, deadline=None)
    def test_solve_peak_at_full_hits_ep_exactly(self, ep, idle):
        try:
            curve = solve_curve(ep, idle, 1.0)
        except CurveSolveError:
            return  # infeasible corner; the solver is allowed to refuse
        assert abs(curve.ep() - ep) < 1e-6
        assert curve.grid_peak_spots()[0] == 1.0
        grid = curve.grid_power()
        assert np.all(np.diff(grid) >= -1e-12)

    @given(
        st.floats(min_value=0.6, max_value=1.1),
        st.floats(min_value=0.05, max_value=0.5),
        st.sampled_from([0.6, 0.7, 0.8, 0.9]),
    )
    @settings(max_examples=120, deadline=None)
    def test_knee_curves_honor_all_three_targets(self, ep, idle, spot):
        try:
            curve = solve_knee_curve(ep, idle, spot)
        except CurveSolveError:
            return
        assert abs(curve.ep() - ep) < 1e-6
        assert curve.grid_peak_spots() == [spot]
        assert abs(curve.idle - idle) < 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.85),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.2, max_value=8.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_family_members_are_valid_curves(self, idle, s, p):
        curve = PowerCurve.mix(idle=idle, s=s, p=p)
        grid = curve.grid_power()
        assert abs(grid[0] - idle) < 1e-12
        assert abs(grid[-1] - 1.0) < 1e-12
        assert np.all(np.diff(grid) >= -1e-12)
        assert 0.0 <= curve.ep() < 2.0


class TestCorrelationProperties:
    @given(
        st.lists(
            st.integers(min_value=-10000, max_value=10000),
            min_size=3,
            max_size=40,
            unique=True,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pearson_bounds(self, xs):
        xs = [x / 100.0 for x in xs]
        ys = [x**3 + 1 for x in xs]
        value = pearson(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(
        st.lists(
            st.integers(min_value=-100000, max_value=100000),
            min_size=3,
            max_size=40,
            unique=True,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_spearman_of_monotone_map_is_one(self, xs):
        xs = [x / 100.0 for x in xs]
        ys = [2 * x + 5 for x in xs]
        assert abs(spearman(xs, ys) - 1.0) < 1e-9


class TestModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from([1.2, 1.6, 2.0, 2.4]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cpu_power_within_tdp(self, utilization, frequency):
        cpu = CpuPowerModel(
            tdp_w=95.0,
            cores=8,
            operating_points=default_voltage_curve([1.2, 1.6, 2.0, 2.4]),
        )
        power = cpu.power_w(utilization, frequency)
        assert 0.0 < power <= 95.0 + 1e-9

    @given(st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=100, deadline=None)
    def test_psu_never_creates_energy(self, dc_load):
        psu = PsuModel(rated_w=500.0)
        assert psu.wall_power_w(dc_load) >= dc_load


class TestEngineConservation:
    """Work-conservation invariants of the discrete-event engine."""

    @given(
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=5.0, max_value=400.0),
        st.floats(min_value=0.8, max_value=2.8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_busy_time_bounded_by_capacity(self, cores, tx_rate, freq, seed):
        from repro.ssj.engine import LinearThroughputProfile, ServiceEngine
        from repro.ssj.workload import TransactionSource

        rng = np.random.default_rng(seed)
        engine = ServiceEngine(
            cores=cores,
            profile=LinearThroughputProfile(ops_at_1ghz=300.0),
            rng=rng,
        )
        source = TransactionSource(
            rate_per_s=tx_rate, rng=np.random.default_rng(seed + 1)
        )
        horizon = 20.0
        result = engine.advance(list(source.arrivals(horizon)), horizon, freq)
        assert 0.0 <= result.busy_core_seconds <= cores * horizon + 1e-6
        assert 0.0 <= result.utilization <= 1.0 + 1e-9

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=5.0, max_value=100.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_nothing_completes_that_did_not_arrive(self, cores, tx_rate, seed):
        from repro.ssj.engine import LinearThroughputProfile, ServiceEngine
        from repro.ssj.workload import TransactionSource

        engine = ServiceEngine(
            cores=cores,
            profile=LinearThroughputProfile(ops_at_1ghz=300.0),
            rng=np.random.default_rng(seed),
        )
        source = TransactionSource(
            rate_per_s=tx_rate, rng=np.random.default_rng(seed + 1)
        )
        arrivals = list(source.arrivals(15.0))
        result = engine.advance(arrivals, 15.0, 2.0)
        assert result.completed_transactions + engine.pending == len(arrivals)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_draining_completes_everything(self, cores, seed):
        from repro.ssj.engine import LinearThroughputProfile, ServiceEngine
        from repro.ssj.workload import TransactionSource

        engine = ServiceEngine(
            cores=cores,
            profile=LinearThroughputProfile(ops_at_1ghz=500.0),
            rng=np.random.default_rng(seed),
        )
        source = TransactionSource(
            rate_per_s=50.0, rng=np.random.default_rng(seed + 1)
        )
        arrivals = list(source.arrivals(5.0))
        first = engine.advance(arrivals, 5.0, 2.0)
        second = engine.advance([], 5000.0, 2.0)
        assert engine.pending == 0
        assert (
            first.completed_transactions + second.completed_transactions
            == len(arrivals)
        )


class TestPlacementProperties:
    """Placement invariants over random demand levels (shared corpus)."""

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=25, deadline=None)
    def test_ep_aware_never_worse_on_a_fixed_fleet(self, share):
        from repro.cluster.placement import (
            ep_aware_placement,
            pack_to_full_placement,
        )
        from repro.dataset.synthesis import generate_corpus

        corpus = _SHARED_CORPUS_CACHE.setdefault(
            "corpus", generate_corpus(2016)
        )
        fleet = _SHARED_CORPUS_CACHE.setdefault(
            "fleet", list(corpus.by_hw_year_range(2014, 2016))
        )
        capacity = _SHARED_CORPUS_CACHE.setdefault(
            "capacity",
            sum(
                level.ssj_ops
                for server in fleet
                for level in server.levels
                if level.target_load == 1.0
            ),
        )
        demand = share * capacity
        packed = pack_to_full_placement(fleet, demand)
        aware = ep_aware_placement(fleet, demand)
        assert packed.satisfied() and aware.satisfied()
        assert aware.total_power_w <= packed.total_power_w * 1.02
        # Placed work matches the demand for both.
        assert aware.placed_ops == pytest.approx(packed.placed_ops, rel=1e-6)


_SHARED_CORPUS_CACHE = {}
