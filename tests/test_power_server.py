"""Unit tests for the composed whole-server power model."""

import pytest

from repro.metrics.ep import UTILIZATION_LEVELS, energy_proportionality
from repro.power.components import SATA_SSD
from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.memory import populate
from repro.power.server import ServerPowerModel


def _server(sockets=2, memory_gb=64, static_fraction=0.25):
    cpu = CpuPowerModel(
        tdp_w=90.0,
        cores=8,
        operating_points=default_voltage_curve([1.2, 1.8, 2.4]),
        static_fraction=static_fraction,
    )
    return ServerPowerModel(
        cpus=[cpu] * sockets,
        memory=populate(memory_gb, "DDR4"),
        disks=[SATA_SSD],
    )


class TestComposition:
    def test_total_cores(self):
        assert _server(sockets=2).total_cores == 16

    def test_needs_at_least_one_cpu(self):
        with pytest.raises(ValueError):
            ServerPowerModel(cpus=[], memory=populate(32, "DDR4"))

    def test_default_psu_sized_above_load(self):
        server = _server()
        assert server.psu.rated_w > server.nameplate_dc_w()


class TestWallPower:
    def test_monotone_in_utilization(self):
        server = _server()
        powers = [server.wall_power_w(u, 2.4) for u in UTILIZATION_LEVELS]
        assert powers == sorted(powers)

    def test_idle_below_peak(self):
        server = _server()
        assert server.idle_wall_power_w() < server.peak_wall_power_w()

    def test_wall_exceeds_dc(self):
        server = _server()
        assert server.wall_power_w(0.7, 2.4) > server.dc_power_w(0.7, 2.4)

    def test_more_memory_draws_more_power(self):
        small = _server(memory_gb=32)
        large = _server(memory_gb=256)
        assert large.wall_power_w(0.5, 2.4) > small.wall_power_w(0.5, 2.4)

    def test_lower_frequency_draws_less_at_same_utilization(self):
        server = _server()
        assert server.wall_power_w(0.8, 1.2) < server.wall_power_w(0.8, 2.4)

    def test_utilization_bounds_enforced(self):
        with pytest.raises(ValueError):
            _server().wall_power_w(1.2, 2.4)


class TestDerivedProportionality:
    def test_lower_static_fraction_improves_ep(self):
        """The Section III.D mechanism: less idle power -> higher EP."""

        def ep_of(server):
            levels = list(UTILIZATION_LEVELS)
            powers = [server.wall_power_w(u, 2.4) for u in levels]
            return energy_proportionality(levels, powers)

        leaky = _server(static_fraction=0.45)
        lean = _server(static_fraction=0.10)
        assert ep_of(lean) > ep_of(leaky)
