"""Unit tests for the result schema and its derived metrics."""

import pytest

from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.power.microarch import Codename, Family, Vendor


def _result(idle=0.3, shape=lambda u: u, peak_w=200.0, max_ops=10000.0, **overrides):
    loads = [round(0.1 * i, 1) for i in range(1, 11)]
    levels = [
        LoadLevel(
            target_load=u,
            ssj_ops=max_ops * u,
            average_power_w=peak_w * (idle + (1 - idle) * shape(u)),
        )
        for u in loads
    ]
    defaults = dict(
        result_id="r1",
        vendor="Acme",
        model="AS-1",
        form_factor="2U",
        hw_year=2014,
        published_year=2015,
        codename=Codename.HASWELL,
        nodes=1,
        chips_per_node=2,
        cores_per_chip=12,
        memory_gb=48.0,
        levels=levels,
        active_idle_power_w=peak_w * idle,
    )
    defaults.update(overrides)
    return SpecPowerResult(**defaults)


class TestConfigurationDerived:
    def test_totals(self):
        result = _result(nodes=2, chips_per_node=2, cores_per_chip=6)
        assert result.total_chips == 4
        assert result.total_cores == 24

    def test_memory_per_core(self):
        result = _result(memory_gb=48.0)  # 24 cores
        assert result.memory_per_core_gb == pytest.approx(2.0)

    def test_family_and_vendor_follow_codename(self):
        result = _result(codename=Codename.SEOUL)
        assert result.family is Family.AMD
        assert result.cpu_vendor is Vendor.AMD

    def test_publication_lag(self):
        assert _result(hw_year=2010, published_year=2013).publication_lag_years == 3


class TestDerivedMetrics:
    def test_linear_curve_ep(self):
        result = _result(idle=0.3)
        assert result.ep == pytest.approx(0.7)

    def test_idle_fraction(self):
        assert _result(idle=0.25).idle_fraction == pytest.approx(0.25)

    def test_dynamic_range_complements_idle(self):
        result = _result(idle=0.25)
        assert result.dynamic_range == pytest.approx(0.75)

    def test_overall_score_matches_definition(self):
        result = _result()
        levels = result.sorted_levels()
        expected = sum(l.ssj_ops for l in levels) / (
            sum(l.average_power_w for l in levels) + result.active_idle_power_w
        )
        assert result.overall_score == pytest.approx(expected)

    def test_linear_server_peaks_at_full_load(self):
        assert _result().peak_ee_spots == [1.0]
        assert _result().primary_peak_spot == 1.0

    def test_convex_server_peaks_interior_and_crosses_ideal(self):
        result = _result(idle=0.15, shape=lambda u: 0.1 * u + 0.9 * u**4)
        assert result.primary_peak_spot < 1.0
        assert result.ideal_intersections()
        assert result.peak_over_full > 1.0

    def test_above_ideal_zone_zero_for_linear(self):
        assert _result().above_ideal_zone_width() == pytest.approx(0.0)

    def test_cache_invalidation(self):
        result = _result()
        before = result.overall_score
        result.levels = [
            LoadLevel(l.target_load, l.ssj_ops * 2.0, l.average_power_w)
            for l in result.levels
        ]
        result.invalidate_cache()
        assert result.overall_score == pytest.approx(before * 2.0, rel=1e-6)

    def test_linear_deviation_zero_for_linear(self):
        assert _result().linear_deviation == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_rejects_duplicate_loads(self):
        result_levels = _result().levels
        bad = result_levels + [result_levels[0]]
        with pytest.raises(ValueError, match="duplicate"):
            _result(levels=bad)

    def test_rejects_nonpositive_configuration(self):
        with pytest.raises(ValueError):
            _result(nodes=0)
        with pytest.raises(ValueError):
            _result(memory_gb=0.0)

    def test_rejects_missing_idle_power(self):
        with pytest.raises(ValueError):
            _result(active_idle_power_w=0.0)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            LoadLevel(target_load=0.0, ssj_ops=1.0, average_power_w=1.0)
        with pytest.raises(ValueError):
            LoadLevel(target_load=0.5, ssj_ops=-1.0, average_power_w=1.0)
        with pytest.raises(ValueError):
            LoadLevel(target_load=0.5, ssj_ops=1.0, average_power_w=0.0)
