"""Tests for the multi-node benchmark runner and the EP decomposition."""

import pytest

from repro.analysis.decomposition import (
    decompose_ep_change,
    stagnation_decomposition,
)
from repro.hwexp.testbed import TESTBED
from repro.power.governors import OndemandGovernor
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.multinode import MultiNodeRunner, aggregate_reports
from repro.ssj.runner import SsjRunner

QUICK = MeasurementPlan(interval_s=2.0, ramp_s=0.5)


@pytest.fixture(scope="module")
def node_setup():
    server = TESTBED[2]
    return server.power_model(), server.profile


class TestMultiNodeRunner:
    @pytest.fixture(scope="class")
    def reports(self, node_setup):
        power_model, profile = node_setup
        single = SsjRunner(
            server=power_model, profile=profile,
            governor=OndemandGovernor(), plan=QUICK, seed=10,
        ).run()
        multi = MultiNodeRunner(
            server=power_model, profile=profile, nodes=4,
            governor=OndemandGovernor(), plan=QUICK, seed=10,
        ).run()
        return single, multi

    def test_aggregate_sums_throughput_and_power(self, reports):
        single, multi = reports
        assert multi.calibrated_max_ops_per_s == pytest.approx(
            4 * single.calibrated_max_ops_per_s, rel=0.15
        )
        assert multi.active_idle_power_w == pytest.approx(
            4 * single.active_idle_power_w, rel=0.1
        )

    def test_aggregate_score_matches_node_scale(self, reports):
        single, multi = reports
        # Overall score is intensive: aggregating identical nodes keeps
        # it in the same range.
        assert multi.overall_score() == pytest.approx(
            single.overall_score(), rel=0.15
        )

    def test_aggregate_ep_at_least_node_ep(self, reports):
        """Independent per-node noise averages; EP holds or improves."""
        single, multi = reports
        assert multi.energy_proportionality() > single.energy_proportionality() - 0.05

    def test_metadata_records_nodes(self, reports):
        _single, multi = reports
        assert multi.metadata["nodes"] == 4
        assert len(multi.metadata["per_node_scores"]) == 4

    def test_mismatched_levels_rejected(self, node_setup):
        power_model, profile = node_setup
        full = SsjRunner(server=power_model, profile=profile, plan=QUICK).run()
        short_plan = MeasurementPlan(
            target_loads=(1.0, 0.5), interval_s=2.0, ramp_s=0.5
        )
        short = SsjRunner(server=power_model, profile=profile, plan=short_plan).run()
        with pytest.raises(ValueError, match="different target loads"):
            aggregate_reports([full, short])

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_node_count_validation(self, node_setup):
        power_model, profile = node_setup
        with pytest.raises(ValueError):
            MultiNodeRunner(server=power_model, profile=profile, nodes=0)


class TestDecomposition:
    def test_terms_sum_exactly(self, corpus):
        for year_a, year_b in ((2008, 2009), (2011, 2012), (2012, 2013)):
            d = decompose_ep_change(corpus, year_a, year_b)
            assert d.mix_term + d.within_term == pytest.approx(
                d.total_change, abs=1e-12
            )

    def test_dip_into_2013_is_mix_dominated(self, corpus):
        """Section III.B: the stagnation is a composition artifact."""
        d = decompose_ep_change(corpus, 2012, 2013)
        assert d.total_change < 0.0
        assert d.mix_share > 0.5
        assert abs(d.mix_term) > abs(d.within_term)

    def test_tocks_are_positive_changes(self, corpus):
        summary = stagnation_decomposition(corpus)
        assert summary["tock_2008_2009"].total_change > 0.1
        assert summary["tock_2011_2012"].total_change > 0.1

    def test_missing_year_rejected(self, corpus):
        with pytest.raises(ValueError, match="no results"):
            decompose_ep_change(corpus, 2002, 2012)
