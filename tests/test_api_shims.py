"""Deprecation shims: old positional signatures warn, keywords stay quiet."""

import warnings

import pytest

from repro.cluster.placement import (
    ep_aware_placement,
    max_throughput_under_cap,
    pack_to_full_placement,
)
from repro.cluster.trace import compare_policies, diurnal_trace, replay_trace
from repro.core.study import Study
from repro.dataset.synthesis import generate_corpus


@pytest.fixture(scope="module")
def fleet():
    return generate_corpus(2016).by_hw_year(2016).results()


@pytest.fixture(scope="module")
def trace():
    return diurnal_trace(steps_per_day=4, noise=0.0)


def collect_warnings(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestPositionalCallsWarn:
    def test_placement_policies(self, fleet):
        for place in (pack_to_full_placement, ep_aware_placement):
            warned = collect_warnings(lambda p=place: p(fleet, 1000.0, True))
            assert len(warned) == 1
            assert "repro.api" in str(warned[0].message)

    def test_cap(self, fleet):
        warned = collect_warnings(
            lambda: max_throughput_under_cap(fleet, 3000.0, "ep-aware")
        )
        assert len(warned) == 1
        assert "CapQuery" in str(warned[0].message)

    def test_replay(self, fleet, trace):
        warned = collect_warnings(
            lambda: replay_trace(fleet, trace, "ep-aware", True)
        )
        assert len(warned) == 1
        assert "ReplayQuery" in str(warned[0].message)

    def test_compare_policies(self, fleet, trace):
        warned = collect_warnings(lambda: compare_policies(fleet, trace, False))
        assert len(warned) == 1

    def test_study_seed(self):
        warned = collect_warnings(lambda: Study(None, 2016))
        assert len(warned) == 1
        assert "Study.query" in str(warned[0].message)


class TestKeywordCallsStayQuiet:
    def test_cluster_entry_points(self, fleet, trace):
        def run():
            ep_aware_placement(fleet, 1000.0, power_off_unused=True)
            pack_to_full_placement(fleet, 1000.0, power_off_unused=False)
            max_throughput_under_cap(fleet, 3000.0, policy="ep-aware")
            replay_trace(fleet, trace, policy="ep-aware")
            compare_policies(fleet, trace, power_off_unused=False)
            Study(seed=2016)

        assert collect_warnings(run) == []

    def test_old_positional_calls_still_compute(self, fleet, trace):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = replay_trace(fleet, trace, "ep-aware", False)
        new = replay_trace(
            fleet, trace, policy="ep-aware", power_off_unused=False
        )
        assert old.energy_kwh == new.energy_kwh
        assert old.served_gops == new.served_gops
