"""Tests for procurement planning and the stacked-bar renderer."""

import pytest

from repro.cluster.procurement import (
    evaluate_candidate,
    fleet_for_demand,
    plan_procurement,
)
from repro.cluster.regions import throughput_at
from repro.cluster.trace import diurnal_trace
from repro.viz.stacked import stacked_bars


@pytest.fixture(scope="module")
def candidates(corpus):
    """The six highest-scoring 2016 models."""
    return sorted(
        corpus.by_hw_year(2016), key=lambda r: -r.overall_score
    )[:6]


class TestFleetSizing:
    def test_count_covers_the_peak(self, candidates):
        model = candidates[0]
        count = fleet_for_demand(model, peak_demand_ops=5e6)
        assert count * throughput_at(model, 1.0) * 0.9 >= 5e6

    def test_headroom_adds_servers(self, candidates):
        model = candidates[0]
        tight = fleet_for_demand(model, 5e6, headroom=0.0)
        loose = fleet_for_demand(model, 5e6, headroom=0.4)
        assert loose >= tight

    def test_validation(self, candidates):
        with pytest.raises(ValueError):
            fleet_for_demand(candidates[0], 0.0)
        with pytest.raises(ValueError):
            fleet_for_demand(candidates[0], 1e6, headroom=1.0)


class TestProcurement:
    def test_evaluation_accounts_energy(self, candidates):
        trace = diurnal_trace(noise=0.0, steps_per_day=12)
        evaluation = evaluate_candidate(candidates[0], 5e6, trace)
        assert evaluation.daily_energy_kwh > 0.0
        assert evaluation.servers_needed >= 1

    def test_plan_ranks_by_energy(self, candidates):
        plan = plan_procurement(candidates, 5e6)
        energies = [e.daily_energy_kwh for e in plan.evaluations]
        assert energies == sorted(energies)

    def test_peak_ee_is_the_wrong_buying_criterion(self):
        """The paper's Section I caution, on the controlled pair."""
        from repro.cluster.procurement import build_controlled_candidates

        pair = build_controlled_candidates()
        plan = plan_procurement(pair, 5e5)
        assert not plan.naive_choice_matches
        assert plan.naive_penalty > 0.10
        assert plan.best_by_energy.ep > plan.best_by_peak_ee.ep

    def test_controlled_pair_is_actually_controlled(self):
        from repro.cluster.procurement import build_controlled_candidates

        champion, proportional = build_controlled_candidates()
        assert champion.peak_ee > proportional.peak_ee  # the naive bait
        assert proportional.ep > champion.ep + 0.2

    def test_flat_100pct_duty_cycle_favors_peak_ee(self):
        """At constant full load the throughput champion wins: the
        naive criterion is only wrong when load fluctuates."""
        from repro.cluster.procurement import build_controlled_candidates
        from repro.cluster.trace import DemandTrace

        pair = build_controlled_candidates()
        flat = DemandTrace(times_h=(0.0, 12.0), demand_fraction=(1.0, 1.0))
        plan = plan_procurement(pair, 5e5, trace=flat)
        assert plan.naive_choice_matches or plan.naive_penalty < 0.05

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            plan_procurement([], 1e6)


class TestStackedBars:
    def test_rows_render_to_exact_width(self):
        text = stacked_bars(
            {"2015": {"a": 3, "b": 1}, "2016": {"a": 1, "b": 1}}, width=40
        )
        for line in text.splitlines():
            if "|" in line and line.count("|") == 2:
                bar = line.split("|")[1]
                assert len(bar) == 40

    def test_category_shares_scale(self):
        text = stacked_bars({"row": {"a": 3, "b": 1}}, width=40)
        bar = text.splitlines()[0].split("|")[1]
        assert bar.count("#") == 30
        assert bar.count("=") == 10

    def test_legend_lists_categories(self):
        text = stacked_bars({"r": {"x": 1.0, "y": 2.0}})
        assert "#=x" in text or "#=y" in text

    def test_zero_row_is_empty(self):
        text = stacked_bars({"r": {"x": 0.0}})
        assert text.splitlines()[0].rstrip().endswith("|")

    def test_category_order_respected(self):
        text = stacked_bars(
            {"r": {"x": 1.0, "y": 1.0}}, category_order=["y", "x"]
        )
        assert text.splitlines()[-1].startswith("#=y")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stacked_bars({})
