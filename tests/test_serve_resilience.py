"""Overload resilience: admission, deadlines, drain, breaker, retry.

The daemon's contract under stress: saturation sheds with 503 (never
hangs), deadlines answer 504 and leave no residue in the memo or the
coalescer, a drain loses zero accepted requests, the circuit breaker
fails fast on permanently broken specs and recovers on schedule, and
the client retries 503s under a seeded policy honoring Retry-After.
"""

import asyncio
import threading
import time

import pytest

from repro.core.faults import FaultPlan, FaultSpec, install
from repro.core.resilience import (
    BuildError,
    DeadlineExceeded,
    RetryPolicy,
    TransientError,
)
from repro.serve import (
    DaemonHandle,
    ServeApp,
    ServeClient,
    ServeLimits,
    start_daemon_thread,
)
from repro.serve.batch import BatchWindow
from repro.serve.daemon import _route
from repro.serve.resilience import AdmissionController, CircuitBreaker, Deadline

REPLAY = {"family": "replay", "servers": 30, "steps": 8}


def run_async(coro):
    return asyncio.run(coro)


def cdf(index):
    lo = round(0.05 * index, 2)
    return {"family": "cdf", "metric": "ep", "lo": lo, "hi": lo + 0.05}


def slow_engine(delay_s, times=None):
    return FaultPlan(
        [FaultSpec(site="serve.engine", mode="latency",
                   delay_s=delay_s, times=times)]
    )


class TestServeLimits:
    def test_defaults_are_valid(self):
        limits = ServeLimits()
        assert limits.max_inflight == 64
        assert limits.max_queue == 256

    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_inflight", 0),
            ("max_queue", -1),
            ("retry_after_s", 0.0),
            ("drain_s", -1.0),
            ("breaker_failures", 0),
            ("breaker_cooldown_s", 0.0),
        ],
    )
    def test_bad_knobs_are_rejected(self, field, value):
        with pytest.raises(ValueError):
            ServeLimits(**{field: value})


class TestDeadline:
    def test_absent_means_none(self):
        assert Deadline.from_ms(None) is None

    @pytest.mark.parametrize(
        "bad",
        ["soon", -5, 0, "", object(),
         "nan", "inf", float("nan"), float("inf"), float("-inf")],
    )
    def test_invalid_values_are_rejected(self, bad):
        with pytest.raises(ValueError):
            Deadline.from_ms(bad)

    def test_budget_counts_down_on_the_clock(self):
        ticks = {"t": 100.0}
        deadline = Deadline(50.0, clock=lambda: ticks["t"])
        assert deadline.remaining_s(lambda: ticks["t"]) == pytest.approx(0.05)
        assert not deadline.expired(lambda: ticks["t"])
        ticks["t"] += 0.051
        assert deadline.expired(lambda: ticks["t"])

    def test_error_carries_site_and_budget(self):
        error = Deadline.from_ms("25").error("serve.batch")
        assert isinstance(error, DeadlineExceeded)
        assert isinstance(error, TransientError)
        assert error.site == "serve.batch"
        assert error.deadline_ms == 25.0


class TestAdmissionController:
    def test_sheds_immediately_when_queue_is_full(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            assert await admission.try_acquire() is True
            assert admission.active == 1 and admission.saturated
            assert await admission.try_acquire() is False
            admission.release()
            assert await admission.try_acquire() is True

        run_async(scenario())

    def test_queued_request_admits_after_release(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=1)
            assert await admission.try_acquire() is True
            queued = asyncio.get_running_loop().create_task(
                admission.try_acquire()
            )
            await asyncio.sleep(0.01)
            assert admission.waiting == 1 and not queued.done()
            admission.release()
            assert await queued is True
            admission.release()

        run_async(scenario())

    def test_deadline_expires_while_queued(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=1)
            assert await admission.try_acquire() is True
            with pytest.raises(DeadlineExceeded) as info:
                await admission.try_acquire(Deadline(30.0))
            assert info.value.site == "serve.admission"
            assert admission.waiting == 0
            admission.release()

        run_async(scenario())


class TestCircuitBreaker:
    def _breaker(self, failures=3, cooldown_s=10.0):
        ticks = {"t": 0.0}
        breaker = CircuitBreaker(failures, cooldown_s,
                                 clock=lambda: ticks["t"])
        return breaker, ticks

    def test_transient_failures_never_trip(self):
        breaker, _ticks = self._breaker()
        for _ in range(10):
            breaker.record_failure("k", TransientError("flaky io"))
        assert breaker.check("k") is None
        assert breaker.trips == 0

    def test_permanent_failures_trip_at_threshold(self):
        breaker, _ticks = self._breaker(failures=3)
        for _ in range(2):
            breaker.record_failure("k", BuildError("bad spec"))
        assert breaker.check("k") is None
        breaker.record_failure("k", BuildError("bad spec"))
        assert breaker.check("k") == pytest.approx(10.0)
        assert breaker.trips == 1 and breaker.open_keys() == 1

    def test_success_resets_the_count(self):
        breaker, _ticks = self._breaker(failures=2)
        breaker.record_failure("k", BuildError("x"))
        breaker.record_success("k")
        breaker.record_failure("k", BuildError("x"))
        assert breaker.check("k") is None

    def test_half_open_probe_closes_on_success(self):
        breaker, ticks = self._breaker(failures=1, cooldown_s=5.0)
        breaker.record_failure("k", BuildError("x"))
        assert breaker.check("k") == pytest.approx(5.0)
        ticks["t"] = 5.0
        assert breaker.check("k") is None  # this caller is the probe
        assert breaker.check("k") is not None  # others keep shedding
        breaker.record_success("k")
        assert breaker.check("k") is None and breaker.open_keys() == 0

    def test_half_open_probe_failure_reopens(self):
        breaker, ticks = self._breaker(failures=1, cooldown_s=5.0)
        breaker.record_failure("k", BuildError("x"))
        ticks["t"] = 5.0
        assert breaker.check("k") is None
        breaker.record_failure("k", BuildError("still broken"))
        assert breaker.check("k") == pytest.approx(5.0)
        assert breaker.trips == 2

    def test_keys_are_independent(self):
        breaker, _ticks = self._breaker(failures=1)
        breaker.record_failure("bad", BuildError("x"))
        assert breaker.check("bad") is not None
        assert breaker.check("good") is None

    def test_aborted_probe_re_arms_immediately(self):
        breaker, ticks = self._breaker(failures=1, cooldown_s=5.0)
        breaker.record_failure("k", BuildError("x"))
        ticks["t"] = 5.0
        assert breaker.check("k") is None  # this caller is the probe
        breaker.probe_aborted("k")  # ...but it shed / expired unrun
        assert breaker.check("k") is None  # a new probe may go at once
        assert breaker.check("k") is not None  # still only one at a time
        breaker.record_success("k")
        assert breaker.check("k") is None and breaker.open_keys() == 0

    def test_lost_probe_goes_stale_and_re_arms(self):
        breaker, ticks = self._breaker(failures=1, cooldown_s=5.0)
        breaker.record_failure("k", BuildError("x"))
        ticks["t"] = 5.0
        assert breaker.check("k") is None  # probe armed, then vanishes
        ticks["t"] = 9.9
        assert breaker.check("k") is not None  # still waiting on it
        ticks["t"] = 10.0
        assert breaker.check("k") is None  # stale probe: re-armed
        breaker.record_success("k")
        assert breaker.open_keys() == 0

    def test_transient_probe_failure_frees_the_slot(self):
        breaker, ticks = self._breaker(failures=1, cooldown_s=5.0)
        breaker.record_failure("k", BuildError("x"))
        ticks["t"] = 5.0
        assert breaker.check("k") is None
        breaker.record_failure("k", TransientError("flaky io"))
        assert breaker.check("k") is None  # no verdict: probe again
        assert breaker.trips == 1  # a transient never re-opens

    def test_cold_failure_streaks_decay(self):
        breaker, ticks = self._breaker(failures=2, cooldown_s=10.0)
        breaker.record_failure("k", BuildError("x"))
        ticks["t"] = 10.0
        breaker.record_failure("k", BuildError("x"))
        assert breaker.check("k") is None  # streak restarted, not tripped
        ticks["t"] = 20.0
        assert breaker.check("k") is None
        assert breaker.tracked_keys() == 0  # cold entry forgotten

    def test_key_states_are_bounded(self):
        ticks = {"t": 0.0}
        breaker = CircuitBreaker(3, 10.0, clock=lambda: ticks["t"],
                                 max_keys=4)
        for index in range(16):
            breaker.record_failure(f"k{index}", BuildError("x"))
        assert breaker.tracked_keys() == 4
        for _ in range(3):
            breaker.record_failure("tripped", BuildError("x"))
        for index in range(16, 32):
            breaker.record_failure(f"k{index}", BuildError("x"))
        assert breaker.tracked_keys() == 4
        assert breaker.check("tripped") is not None  # open keys survive


class TestBatchDeadlines:
    def test_expired_riders_run_no_engine_work(self):
        calls = []

        def execute_group(requests):
            calls.append(len(requests))
            return requests

        async def scenario():
            window = BatchWindow(execute_group, lambda r: "cohort",
                                 window_s=0.05)
            with pytest.raises(DeadlineExceeded):
                await window.submit("a", timeout_s=0.005)
            await asyncio.sleep(0.1)  # let the window flush

        run_async(scenario())
        assert calls == [] and True

    def test_live_riders_survive_an_expired_one(self):
        def execute_group(requests):
            return [f"ran:{r}" for r in requests]

        async def scenario():
            window = BatchWindow(execute_group, lambda r: "cohort",
                                 window_s=0.05)
            doomed = asyncio.get_running_loop().create_task(
                window.submit("doomed", timeout_s=0.005)
            )
            survivor = await window.submit("survivor")
            with pytest.raises(DeadlineExceeded):
                await doomed
            return survivor

        assert run_async(scenario()) == "ran:survivor"


class TestAppOverload:
    def test_saturation_sheds_with_retry_after(self):
        app = ServeApp(
            limits=ServeLimits(max_inflight=1, max_queue=0, retry_after_s=2.0)
        )
        app.warm()
        payloads = [cdf(i) for i in range(4)]

        async def burst():
            return await asyncio.gather(
                *(app.handle(dict(p)) for p in payloads)
            )

        with install(slow_engine(0.3, times=1)):
            answers = run_async(burst())
        statuses = sorted(status for status, _body, _headers in answers)
        assert statuses == [200, 503, 503, 503]
        assert app.stats.shed == 3 and app.stats.admitted == 1
        shed_headers = [h for s, _b, h in answers if s == 503]
        assert all(h.get("Retry-After") == "2" for h in shed_headers)

    def test_bounded_queue_admits_in_turn(self):
        app = ServeApp(limits=ServeLimits(max_inflight=1, max_queue=2))
        app.warm()
        payloads = [cdf(i) for i in range(4)]

        async def burst():
            return await asyncio.gather(
                *(app.handle(dict(p)) for p in payloads)
            )

        with install(slow_engine(0.2, times=1)):
            answers = run_async(burst())
        statuses = sorted(status for status, _body, _headers in answers)
        assert statuses == [200, 200, 200, 503]
        assert app.stats.shed == 1 and app.stats.admitted == 3

    def test_deadline_expiry_answers_504(self):
        app = ServeApp()
        app.warm()

        async def scenario():
            return await app.handle(cdf(0), deadline_ms=50)

        with install(slow_engine(0.5, times=1)):
            status, body, _headers = run_async(scenario())
        assert status == 504
        assert b"deadline" in body
        assert app.stats.timeouts == 1

    def test_deadline_storm_leaves_no_residue_then_recovers(self):
        app = ServeApp()
        app.warm()
        payloads = [cdf(i) for i in range(8)]

        async def storm():
            answers = await asyncio.gather(
                *(app.handle(dict(p), deadline_ms=40) for p in payloads)
            )
            for _ in range(200):  # let abandoned flights finish cancelling
                if len(app._coalescer) == 0:
                    break
                await asyncio.sleep(0.01)
            return answers

        with install(slow_engine(0.4, times=8)):
            answers = run_async(storm())
        assert {status for status, _b, _h in answers} == {504}
        assert app.stats.timeouts == 8
        assert len(app._coalescer) == 0
        assert len(app._memo) == 0
        assert app._batch.pending == 0

        async def rerun():
            return await asyncio.gather(
                *(app.handle(dict(p)) for p in payloads)
            )

        answers = run_async(rerun())
        assert {status for status, _b, _h in answers} == {200}

    def test_breaker_trips_and_fails_fast(self):
        app = ServeApp(
            limits=ServeLimits(breaker_failures=2, breaker_cooldown_s=30.0)
        )
        app.warm()
        plan = FaultPlan(
            [FaultSpec(site="serve.engine", mode="fail-n", error="build",
                       times=2)]
        )

        async def scenario():
            first = await app.handle(cdf(0))
            second = await app.handle(cdf(0))
            third = await app.handle(cdf(0))
            return first, second, third

        with install(plan):
            first, second, third = run_async(scenario())
        assert first[0] == 500 and second[0] == 500
        assert third[0] == 503
        assert "Retry-After" in third[2]
        assert app.stats.breaker_fastfail == 1
        assert app._breaker.trips == 1

    def test_transient_engine_failures_do_not_trip(self):
        app = ServeApp(limits=ServeLimits(breaker_failures=2))
        app.warm()
        plan = FaultPlan(
            [FaultSpec(site="serve.engine", mode="fail-n", error="transient",
                       times=2)]
        )

        async def scenario():
            first = await app.handle(cdf(0))
            second = await app.handle(cdf(0))
            third = await app.handle(cdf(0))
            return first, second, third

        with install(plan):
            first, second, third = run_async(scenario())
        assert first[0] == 503 and second[0] == 503  # retryable, hinted
        assert third[0] == 200  # fault budget spent, spec still healthy
        assert app._breaker.trips == 0

    def test_expired_probe_does_not_wedge_the_breaker(self):
        """A half-open probe that deadline-expires (its flight cancelled
        unjudged) must not leave the key 503'd until restart."""
        app = ServeApp(
            limits=ServeLimits(breaker_failures=1, breaker_cooldown_s=0.5)
        )
        app.warm()
        trip = FaultPlan(
            [FaultSpec(site="serve.engine", mode="fail-n", error="build",
                       times=1)]
        )

        with install(trip):
            status, _b, _h = run_async(app.handle(cdf(0)))
        assert status == 500
        status, _b, _h = run_async(app.handle(cdf(0)))
        assert status == 503  # tripped open
        time.sleep(0.6)  # cooldown elapses

        async def expiring_probe():
            status, _body, _headers = await app.handle(cdf(0),
                                                       deadline_ms=30)
            for _ in range(200):  # let the abandoned flight cancel
                if len(app._coalescer) == 0:
                    break
                await asyncio.sleep(0.01)
            return status

        with install(slow_engine(0.4, times=1)):
            status = run_async(expiring_probe())
        assert status == 504  # the probe expired without a verdict

        status, _b, _h = run_async(app.handle(cdf(0)))
        assert status == 200  # a fresh probe ran and closed the circuit
        assert app._breaker.open_keys() == 0

    def test_draining_app_refuses_new_queries(self):
        app = ServeApp()
        app.warm()
        app.begin_drain()
        status, body, headers = run_async(app.handle(cdf(0)))
        assert status == 503
        assert b"draining" in body
        assert "Retry-After" in headers
        assert app.stats.shed == 1

    def test_healthz_flips_to_draining(self):
        app = ServeApp()

        async def probe():
            return await _route(app, "GET", "/healthz", b"")

        status, body, _headers = run_async(probe())
        assert status == 200 and b"ok" in body
        app.begin_drain()
        status, body, _headers = run_async(probe())
        assert status == 503 and b"draining" in body

    def test_handle_query_stays_two_tuple(self):
        app = ServeApp()
        app.warm()
        status, body = run_async(app.handle_query(cdf(0)))
        assert status == 200 and body.startswith(b"{")


class TestCoalescerCancellation:
    def test_expired_joiners_do_not_poison_the_leader(self):
        """64 HTTP clients, 8 with tiny deadlines: the 8 get 504 while
        the shared computation survives for the other 56."""
        app = ServeApp()
        handle = None
        plan = slow_engine(1.5, times=1)
        answers = [None] * 64
        barrier = threading.Barrier(64)

        def worker(index):
            client = ServeClient(port=handle.port, timeout_s=60)
            barrier.wait(timeout=30)
            deadline_ms = 200 if index < 8 else None
            answers[index] = client.query(dict(REPLAY),
                                          deadline_ms=deadline_ms)
            client.close()

        with install(plan):
            handle = start_daemon_thread(app)
            try:
                threads = [
                    threading.Thread(target=worker, args=(i,))
                    for i in range(64)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                assert not any(t.is_alive() for t in threads)
            finally:
                handle.stop(timeout_s=30)

        expired = [answers[i] for i in range(8)]
        served = [answers[i] for i in range(8, 64)]
        assert {status for status, _doc in expired} == {504}
        assert {status for status, _doc in served} == {200}
        texts = {doc["text"] for _status, doc in served}
        assert len(texts) == 1  # one shared computation, one answer
        assert app.stats.computations == 1
        assert app.stats.timeouts == 8
        assert len(app._coalescer) == 0

    def test_joiner_after_last_waiter_cancel_starts_fresh(self):
        """A request landing on a flight whose cancel is in-flight must
        start a new computation, not inherit the CancelledError."""
        from repro.serve.coalesce import Coalescer

        async def scenario():
            coalescer = Coalescer()
            starts = []
            release = asyncio.Event()

            async def compute():
                starts.append(1)
                await release.wait()
                return b"ok"

            with pytest.raises(DeadlineExceeded):
                await coalescer.run("k", compute, timeout_s=0.01)
            # the abandoned flight's cancel is issued but its task has
            # not settled yet; the entry may still be in the map
            joiner = asyncio.get_running_loop().create_task(
                coalescer.run("k", compute)
            )
            await asyncio.sleep(0.05)
            release.set()
            result, shared = await joiner
            assert result == b"ok"
            assert shared is False  # a fresh flight, not the doomed one
            assert len(starts) == 2
            for _ in range(200):
                if len(coalescer) == 0:
                    break
                await asyncio.sleep(0.01)
            assert len(coalescer) == 0

        run_async(scenario())

    def test_last_waiter_leaving_cancels_the_flight(self):
        app = ServeApp()
        app.warm()

        async def scenario():
            status, _body, _headers = await app.handle(cdf(0), deadline_ms=40)
            for _ in range(200):
                if len(app._coalescer) == 0:
                    break
                await asyncio.sleep(0.01)
            return status

        with install(slow_engine(0.5, times=1)):
            status = run_async(scenario())
        assert status == 504
        assert len(app._coalescer) == 0
        assert len(app._memo) == 0  # the abandoned flight memoized nothing


class TestGracefulDrain:
    def test_drain_loses_zero_accepted_requests(self):
        app = ServeApp(limits=ServeLimits(drain_s=10.0))
        result = {}

        def worker(port):
            client = ServeClient(port=port, timeout_s=30)
            result["answer"] = client.query(cdf(0))
            client.close()

        with install(slow_engine(0.5, times=1)):
            handle = start_daemon_thread(app)
            thread = threading.Thread(target=worker, args=(handle.port,))
            thread.start()
            deadline = time.monotonic() + 5.0
            while app.stats.admitted < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert app.stats.admitted == 1  # the query is in the house
            handle.stop(timeout_s=20)
            thread.join(timeout=20)
        assert not thread.is_alive()
        status, document = result["answer"]
        assert status == 200
        assert document["family"] == "cdf"
        assert app.state == "draining"

    def test_stopped_daemon_refuses_connections(self):
        handle = start_daemon_thread(ServeApp())
        handle.stop(timeout_s=20)
        with pytest.raises(OSError):
            ServeClient(port=handle.port, timeout_s=2).healthz()

    def test_drain_overrun_warns_instead_of_crashing(self, monkeypatch):
        """A wait_closed() that outlives the I/O ceiling (3.12+ waits on
        stuck handlers) must warn and exit, not crash the loop thread."""
        from repro.serve import daemon as daemon_module

        async def never_closes(self):
            await asyncio.sleep(60)

        monkeypatch.setattr(daemon_module, "_IO_TIMEOUT_S", 0.05)
        monkeypatch.setattr(
            asyncio.base_events.Server, "wait_closed", never_closes
        )

        async def scenario():
            shutdown = asyncio.Event()
            shutdown.set()
            await daemon_module._serve(ServeApp(), "127.0.0.1", 0, shutdown)

        with pytest.warns(RuntimeWarning, match="drain overran"):
            run_async(scenario())

    def test_stop_warns_with_stuck_task_names(self):
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner():
            asyncio.set_event_loop(loop)

            def arm():
                loop.create_task(asyncio.sleep(60), name="stuck-flight")
                started.set()

            loop.call_soon(arm)
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        handle = DaemonHandle(
            app=None, host="127.0.0.1", port=0,
            thread=thread, loop=loop, shutdown=asyncio.Event(),
        )
        try:
            with pytest.warns(RuntimeWarning, match="stuck-flight"):
                handle.stop(timeout_s=0.2)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()


class _ScriptedClient(ServeClient):
    """A ServeClient whose exchanges are played from a script."""

    def __init__(self, script, **kwargs):
        self.script = list(script)
        self.sleeps = []
        super().__init__(sleep=self.sleeps.append, **kwargs)

    def _request_once(self, method, target, body, headers):
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        status, response_headers = step
        self.last_headers = dict(response_headers)
        return status, {"status": status}


class TestClientRetry:
    def _policy(self, attempts=3):
        return RetryPolicy(attempts=attempts, base_delay_s=0.05,
                           jitter=0.0)

    def test_no_policy_preserves_single_reconnect(self):
        client = _ScriptedClient(
            [ConnectionResetError("stale"), (200, {})]
        )
        status, _doc = client.query(cdf(0))
        assert status == 200
        assert client.sleeps == []

    def test_503_retries_and_honors_retry_after(self):
        client = _ScriptedClient(
            [(503, {"retry-after": "0.2"}), (200, {})],
            retry=self._policy(),
        )
        status, _doc = client.query(cdf(0))
        assert status == 200
        assert client.retried_503 == 1
        assert len(client.sleeps) == 1
        assert client.sleeps[0] >= 0.2  # server hint beats policy delay

    def test_retry_delays_are_seeded_and_deterministic(self):
        first = _ScriptedClient(
            [(503, {}), (503, {}), (200, {})], retry=self._policy()
        )
        second = _ScriptedClient(
            [(503, {}), (503, {}), (200, {})], retry=self._policy()
        )
        first.query(cdf(0))
        second.query(cdf(0))
        assert first.sleeps == second.sleeps
        assert len(first.sleeps) == 2

    def test_exhausted_attempts_return_last_503(self):
        client = _ScriptedClient(
            [(503, {}), (503, {}), (503, {})], retry=self._policy(attempts=3)
        )
        status, _doc = client.query(cdf(0))
        assert status == 503
        assert client.retried_503 == 3

    def test_connection_errors_retry_under_policy(self):
        client = _ScriptedClient(
            [ConnectionResetError("x"), ConnectionResetError("y"), (200, {})],
            retry=self._policy(),
        )
        status, _doc = client.query(cdf(0))
        assert status == 200
        assert len(client.sleeps) == 2

    def test_persistent_connection_error_raises(self):
        client = _ScriptedClient(
            [ConnectionResetError("x")] * 3, retry=self._policy(attempts=3)
        )
        with pytest.raises(ConnectionResetError):
            client.query(cdf(0))


class TestDeadlineOverHttp:
    def test_header_round_trip(self):
        handle = start_daemon_thread(ServeApp())
        try:
            client = ServeClient(port=handle.port)
            status, document = client.query(cdf(0), deadline_ms=30_000)
            assert status == 200
            assert document["family"] == "cdf"
            status, document = client.query(cdf(0), deadline_ms=-5)
            assert status == 400
            assert "deadline_ms" in document["error"]
            client.close()
        finally:
            handle.stop(timeout_s=20)

    def test_body_field_is_stripped_before_decoding(self):
        app = ServeApp()
        app.warm()
        payload = dict(cdf(0), deadline_ms=30_000)
        status, _body, _headers = run_async(app.handle(payload))
        assert status == 200
