"""Unit tests for the energy-efficiency metrics."""

import numpy as np
import pytest

from repro.metrics.ee import (
    efficiency_series,
    high_efficiency_zone,
    overall_score,
    peak_efficiency,
    peak_efficiency_offset,
    peak_efficiency_spots,
    peak_over_full_ratio,
)

LOADS = [round(0.1 * i, 1) for i in range(1, 11)]


def _linear_server(idle=0.3, max_ops=1000.0, peak_w=200.0):
    """Ops proportional to load, power linear from idle to peak."""
    ops = [max_ops * u for u in LOADS]
    power = [peak_w * (idle + (1 - idle) * u) for u in LOADS]
    return ops, power, peak_w * idle


class TestEfficiencySeries:
    def test_ratio_per_level(self):
        series = efficiency_series([100.0, 300.0], [50.0, 100.0])
        assert np.allclose(series, [2.0, 3.0])

    def test_rejects_zero_power(self):
        with pytest.raises(ValueError, match="positive"):
            efficiency_series([1.0], [0.0])

    def test_rejects_negative_ops(self):
        with pytest.raises(ValueError, match="negative"):
            efficiency_series([-1.0], [10.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            efficiency_series([], [])


class TestOverallScore:
    def test_matches_manual_sum(self):
        ops, power, idle = _linear_server()
        expected = sum(ops) / (sum(power) + idle)
        assert overall_score(ops, power, idle) == pytest.approx(expected)

    def test_idle_power_lowers_the_score(self):
        ops, power, idle = _linear_server()
        with_idle = overall_score(ops, power, idle)
        with_more_idle = overall_score(ops, power, idle * 2)
        assert with_more_idle < with_idle

    def test_rejects_nonpositive_idle(self):
        ops, power, _ = _linear_server()
        with pytest.raises(ValueError, match="positive"):
            overall_score(ops, power, 0.0)


class TestPeakEfficiency:
    def test_linear_server_peaks_at_full_load(self):
        ops, power, _ = _linear_server()
        spots = peak_efficiency_spots(LOADS, ops, power)
        assert spots == [1.0]

    def test_modern_shape_peaks_interior(self):
        ops = [1000.0 * u for u in LOADS]
        # Efficiency by construction peaks at 0.7.
        power = [1000.0 * u / (1.2 - abs(u - 0.7)) for u in LOADS]
        spots = peak_efficiency_spots(LOADS, ops, power)
        assert spots == [pytest.approx(0.7)]

    def test_tied_levels_both_reported(self):
        ops = [100.0, 200.0, 300.0]
        power = [100.0, 100.0, 300.0]
        spots = peak_efficiency_spots([0.3, 0.8, 0.9], ops, power, rtol=1e-9)
        # EE: 1.0, 2.0, 1.0 -> single; craft an exact tie instead:
        ops = [100.0, 160.0, 180.0]
        power = [100.0, 80.0, 90.0]
        spots = peak_efficiency_spots([0.5, 0.8, 0.9], ops, power, rtol=1e-9)
        assert spots == [0.8, 0.9]

    def test_peak_value_matches_series_max(self):
        ops, power, _ = _linear_server()
        series = efficiency_series(ops, power)
        assert peak_efficiency(ops, power) == pytest.approx(series.max())

    def test_offset_zero_at_full_load_peak(self):
        ops, power, _ = _linear_server()
        assert peak_efficiency_offset(LOADS, ops, power) == pytest.approx(0.0)

    def test_offset_for_interior_peak(self):
        ops = [1000.0 * u for u in LOADS]
        power = [1000.0 * u / (1.2 - abs(u - 0.7)) for u in LOADS]
        assert peak_efficiency_offset(LOADS, ops, power) == pytest.approx(0.3)


class TestPeakOverFull:
    def test_linear_server_ratio_is_one(self):
        ops, power, _ = _linear_server()
        assert peak_over_full_ratio(LOADS, ops, power) == pytest.approx(1.0)

    def test_interior_peak_ratio_exceeds_one(self):
        ops = [1000.0 * u for u in LOADS]
        power = [1000.0 * u / (1.2 - abs(u - 0.7)) for u in LOADS]
        assert peak_over_full_ratio(LOADS, ops, power) > 1.0

    def test_requires_full_load_level(self):
        with pytest.raises(ValueError, match="100%"):
            peak_over_full_ratio([0.5, 0.9], [1.0, 2.0], [1.0, 1.0])


class TestHighEfficiencyZone:
    def test_linear_server_zone_is_only_full_load(self):
        ops, power, _ = _linear_server()
        low, high = high_efficiency_zone(LOADS, ops, power, threshold=1.0)
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(1.0)

    def test_zone_widens_at_lower_threshold(self):
        ops, power, _ = _linear_server()
        low_08, high_08 = high_efficiency_zone(LOADS, ops, power, threshold=0.8)
        assert low_08 < 1.0
        assert high_08 == pytest.approx(1.0)

    def test_unreachable_threshold_raises(self):
        ops, power, _ = _linear_server()
        with pytest.raises(ValueError, match="threshold"):
            high_efficiency_zone(LOADS, ops, power, threshold=5.0)
