"""Tests for the plain-text rendering helpers."""

import pytest

from repro.viz.ascii_chart import bar_chart, line_chart, scatter_chart
from repro.viz.series import Series, to_csv
from repro.viz.tables import format_table


class TestCharts:
    def test_line_chart_contains_series_glyphs(self):
        chart = line_chart(
            {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.0, 1.0), (1.0, 0.0)]},
            title="two lines",
        )
        assert "two lines" in chart
        assert "*=a" in chart
        assert "o=b" in chart

    def test_scatter_plots_every_point_region(self):
        chart = scatter_chart({"pts": [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]})
        assert chart.count("*") >= 3

    def test_chart_dimensions_respected(self):
        chart = line_chart({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == 8

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart({"x": 1.0, "y": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"flat": [(0.0, 5.0), (1.0, 5.0)]})
        assert "flat" in chart


class TestTables:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.125]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.500" in text and "22.125" in text

    def test_booleans_rendered_as_words(self):
        text = format_table(["k", "v"], [["x", True], ["y", False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_custom_float_format(self):
        text = format_table(["a", "b"], [["r", 3.14159]], float_format="{:.1f}")
        assert "3.1" in text and "3.14" not in text


class TestSeries:
    def test_from_xy_pairs_up(self):
        series = Series.from_xy("s", [1, 2], [3, 4])
        assert series.points == ((1.0, 3.0), (2.0, 4.0))
        assert series.xs() == [1.0, 2.0]
        assert series.ys() == [3.0, 4.0]

    def test_from_xy_length_mismatch(self):
        with pytest.raises(ValueError):
            Series.from_xy("s", [1], [1, 2])

    def test_csv_long_form(self):
        text = to_csv([Series.from_xy("s", [1], [2])])
        lines = text.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert lines[1] == "s,1.0,2.0"

    def test_csv_written_to_disk(self, tmp_path):
        path = tmp_path / "out.csv"
        to_csv([Series.from_xy("s", [1], [2])], path)
        assert path.read_text().startswith("series,x,y")
