"""Tests for the cross-module dataflow tier of repro.checks.

Covers the call graph and the two dataflow lattices, the three new
rule families (REP12x flow determinism, REP51x resource lifetimes,
REP6xx hot paths), and the engine's incremental/parallel/changed/SARIF
modes, against violation fixtures with exact rule-id/line assertions.
"""

import ast
import json
import shutil
from pathlib import Path

from repro.checks import RULES, Severity, exit_code, run_checks
from repro.checks import engine as engine_mod
from repro.checks.callgraph import get_call_graph
from repro.checks.dataflow import array_summaries, param_names, tainted_names
from repro.checks.engine import collect_files, load_project
from repro.checks.incremental import FindingCache
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "checks"
SRC = Path(__file__).parent.parent / "src"


def _hits(findings):
    return sorted((f.rule_id, Path(f.path).name, f.line) for f in findings)


class TestCallGraph:
    def test_cross_module_edges_resolve_with_bound_args(self):
        project = load_project([str(FIXTURES / "flow_tree")]).project
        graph = get_call_graph(project)
        assert "streams.make_stream" in graph.table
        sites = graph.callers_of("streams.make_stream")
        assert sorted(s.caller.name for s in sites) == [
            "excused", "replay", "threaded",
        ]
        replay_site = next(s for s in sites if s.caller.name == "replay")
        bound = replay_site.bound_args()
        assert isinstance(bound["seed"], ast.Constant)
        assert bound["seed"].value == 1234

    def test_graph_is_memoized_per_project(self):
        project = load_project([str(FIXTURES / "flow_tree")]).project
        assert get_call_graph(project) is get_call_graph(project)

    def test_method_edges_via_self(self):
        project = load_project([str(FIXTURES / "lifetime_tree")]).project
        graph = get_call_graph(project)
        assert "fleet_driver.FleetRunner.__init__" in graph.table
        callers = graph.callers_of("pools.make_pool")
        caller_names = {s.caller.qualname for s in callers}
        assert "fleet_driver.FleetRunner.__init__" in caller_names


class TestDataflowLattices:
    def test_taint_propagates_through_simple_assigns(self):
        func = ast.parse(
            "def f(seed):\n"
            "    base = seed + 1\n"
            "    derived = (base, 2)\n"
            "    untouched = 7\n"
        ).body[0]
        tainted = tainted_names(func, set(param_names(func)))
        assert {"seed", "base", "derived"} <= tainted
        assert "untouched" not in tainted

    def test_array_summaries_cross_module(self):
        project = load_project([str(FIXTURES / "hot_tree")]).project
        summaries, _ = array_summaries(project)
        assert summaries["helpers.load_column"] is True


class TestFlowDeterminismRules:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "flow_violations.py")], select=["REP12"]
        )
        assert _hits(findings) == [
            ("REP121", "flow_violations.py", 9),
            ("REP122", "flow_violations.py", 19),
            ("REP124", "flow_violations.py", 5),
        ]

    def test_seed_chain_break_across_modules(self):
        findings = run_checks(
            [str(FIXTURES / "flow_tree")], select=["REP12"]
        )
        # replay fires; threaded derives from its own seed; excused is
        # silenced by the def-line suppression (project-scoped finding).
        assert _hits(findings) == [("REP123", "driver.py", 7)]


class TestHotPathRules:
    def test_exact_findings_marker_scope(self):
        findings = run_checks(
            [str(FIXTURES / "hotpath_violations.py")], select=["REP6"]
        )
        assert _hits(findings) == [
            ("REP601", "hotpath_violations.py", 8),
            ("REP601", "hotpath_violations.py", 15),
            ("REP601", "hotpath_violations.py", 22),
            ("REP602", "hotpath_violations.py", 16),
            ("REP602", "hotpath_violations.py", 34),
            ("REP603", "hotpath_violations.py", 16),
            ("REP604", "hotpath_violations.py", 23),
            ("REP604", "hotpath_violations.py", 24),
            ("REP605", "hotpath_violations.py", 28),
        ]

    def test_exact_findings_module_scope(self):
        findings = run_checks(
            [str(FIXTURES / "hot_tree")], select=["REP6"]
        )
        # line 17 proves the cross-module "returns ndarray" summary:
        # the iterated expression is a call into the cold helpers module.
        assert _hits(findings) == [
            ("REP601", "batch_placement.py", 10),
            ("REP601", "batch_placement.py", 17),
            ("REP602", "batch_placement.py", 11),
            ("REP603", "batch_placement.py", 11),
        ]

    def test_warnings_do_not_fail_the_run(self):
        findings = run_checks(
            [str(FIXTURES / "hotpath_violations.py")],
            select=["REP603", "REP605"],
        )
        assert findings
        assert exit_code(findings) == 0


class TestLifetimeRules:
    def test_local_leaks_exact(self):
        findings = run_checks(
            [str(FIXTURES / "lifetime_violations.py")], select=["REP51"]
        )
        assert _hits(findings) == [
            ("REP513", "lifetime_violations.py", 9),
            ("REP513", "lifetime_violations.py", 14),
            ("REP513", "lifetime_violations.py", 19),
            ("REP513", "lifetime_violations.py", 23),
        ]

    def test_escapes_audited_through_call_graph(self):
        findings = run_checks(
            [str(FIXTURES / "lifetime_tree")], select=["REP5"]
        )
        # REP505 stays quiet on the escaping segment in pools.py; the
        # REP51x family blames the callers that drop the resources.
        assert _hits(findings) == [
            ("REP511", "fleet_driver.py", 7),
            ("REP511", "fleet_driver.py", 11),
            ("REP511", "fleet_driver.py", 16),
            ("REP512", "fleet_driver.py", 34),
        ]


class TestEngineSatellites:
    def test_unscannable_paths_warn_instead_of_vanishing(self, tmp_path):
        not_python = tmp_path / "notes.txt"
        not_python.write_text("hello\n")
        missing = tmp_path / "gone.py"
        findings = run_checks([str(not_python), str(missing)])
        assert [f.rule_id for f in findings] == ["REP002", "REP002"]
        assert all(f.severity is Severity.WARNING for f in findings)
        assert exit_code(findings) == 0

    def test_collect_files_records_warnings(self, tmp_path):
        bogus = tmp_path / "data.csv"
        bogus.write_text("a,b\n")
        warnings = []
        collected = collect_files([str(bogus)], warnings=warnings)
        assert collected == []
        assert len(warnings) == 1 and warnings[0].rule_id == "REP002"

    def test_def_line_suppression_covers_function_span(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def helper(count):  # repro-checks: ignore[REP121]\n"
            "    rng = np.random.default_rng(7)\n"
            "    return rng.normal(size=count)\n"
        )
        assert run_checks([str(target)], select=["REP121"]) == []
        # the same shape without the comment fires
        target.write_text(
            "import numpy as np\n"
            "\n"
            "\n"
            "def helper(count):\n"
            "    rng = np.random.default_rng(7)\n"
            "    return rng.normal(size=count)\n"
        )
        findings = run_checks([str(target)], select=["REP121"])
        assert [f.rule_id for f in findings] == ["REP121"]


class TestIncrementalEngine:
    def _tree(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        shutil.copy(FIXTURES / "flow_violations.py", root / "flow.py")
        shutil.copy(FIXTURES / "clean.py", root / "clean.py")
        return root

    def test_warm_run_matches_cold_and_skips_parsing(
        self, tmp_path, monkeypatch
    ):
        root = self._tree(tmp_path)
        cache = FindingCache(tmp_path / "cache")
        cold = run_checks([str(root)], cache=cache)
        assert cold  # the fixture violations
        # A fully warm rerun must not parse anything: break the parser
        # and the run still succeeds off the cache.
        def boom(*_args, **_kwargs):
            raise AssertionError("warm run parsed a file")

        monkeypatch.setattr(engine_mod, "_build_source_file", boom)
        warm_cache = FindingCache(tmp_path / "cache")
        warm = run_checks([str(root)], cache=warm_cache)
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        before = run_checks([str(root)], cache=FindingCache(cache_dir))
        target = root / "clean.py"
        target.write_text(
            target.read_text() + "\n\nimport numpy as np\n"
            "EXTRA = np.random.default_rng(3)\n"
        )
        after = run_checks([str(root)], cache=FindingCache(cache_dir))
        fresh = [f for f in after if f.path.endswith("clean.py")]
        assert {f.rule_id for f in fresh} == {"REP124"}
        assert len(after) == len(before) + 1

    def test_corrupt_cache_is_evicted_silently(self, tmp_path):
        root = self._tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_checks([str(root)], cache=FindingCache(cache_dir))
        (cache_dir / "findings.json").write_text("{not json")
        again = run_checks([str(root)], cache=FindingCache(cache_dir))
        assert again == run_checks([str(root)])

    def test_parallel_jobs_produce_identical_findings(self):
        serial = run_checks([str(FIXTURES / "flow_tree")])
        parallel = run_checks([str(FIXTURES / "flow_tree")], jobs=2)
        assert [f.to_dict() for f in serial] == [
            f.to_dict() for f in parallel
        ]

    def test_changed_mode_filters_by_git_status(self, monkeypatch):
        target = FIXTURES / "det_violations.py"
        rel = engine_mod._rel(target)
        monkeypatch.setattr(
            engine_mod, "_git_changed_rels", lambda: {rel}
        )
        findings = run_checks(
            [str(target), str(FIXTURES / "flow_violations.py")],
            changed=True,
        )
        assert findings and all(f.path == rel for f in findings)
        monkeypatch.setattr(engine_mod, "_git_changed_rels", lambda: set())
        assert run_checks([str(target)], changed=True) == []


class TestSarifOutput:
    def test_sarif_document_shape(self, capsys):
        code = main(
            [
                "checks", str(FIXTURES / "det_violations.py"),
                "--format", "sarif", "--no-cache",
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-checks"
        results = run["results"]
        assert results
        rule_ids = {r["ruleId"] for r in results}
        assert "REP101" in rule_ids
        for result in results:
            assert result["level"] in ("error", "warning")
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
        catalog = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids <= catalog


class TestSelfScan:
    def test_src_is_clean_under_the_full_rule_set(self):
        findings = run_checks([str(SRC)], cache=FindingCache())
        assert findings == []

    def test_new_families_are_catalogued(self):
        for rule_id in ("REP121", "REP122", "REP123", "REP124",
                        "REP511", "REP512", "REP513",
                        "REP601", "REP602", "REP603", "REP604", "REP605"):
            assert rule_id in RULES
            assert RULES[rule_id].description
