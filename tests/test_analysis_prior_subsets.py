"""Tests for the prior-work subset comparisons (Sections I and VI)."""

import pytest

from repro.analysis.prior_subsets import (
    ep_score_correlation_drift,
    high_ep_peak_spot_comparison,
    hsu_poole_subset,
    mean_ep_drift,
    wong_2011_subset,
    wong_2015_subset,
)


class TestWindows:
    def test_windows_nest(self, corpus):
        w2011 = len(wong_2011_subset(corpus))
        w2014 = len(hsu_poole_subset(corpus))
        w2015 = len(wong_2015_subset(corpus))
        assert w2011 < w2014 < w2015 < len(corpus)

    def test_window_sizes_near_prior_work(self, corpus):
        # Hsu & Poole analysed 459 results (incl. non-compliant ones we
        # do not model) through June 2014; our valid-only window lands
        # just below.  Wong's MICRO'12 window had 291.
        assert len(hsu_poole_subset(corpus)) == pytest.approx(459, abs=25)
        assert len(wong_2011_subset(corpus)) == pytest.approx(291, abs=25)


class TestDrifts:
    def test_correlation_decays_with_newer_data(self, corpus):
        """Paper: 0.83 (Hsu & Poole, <=2014) -> 0.741 (all 477)."""
        drift = ep_score_correlation_drift(corpus)
        assert drift.subset_value == pytest.approx(0.83, abs=0.06)
        assert drift.full_value == pytest.approx(0.741, abs=0.08)
        assert drift.drift < -0.04  # it *decreases*, the paper's point

    def test_mean_ep_rises_after_2011(self, corpus):
        drift = mean_ep_drift(corpus)
        assert drift.subset_value < 0.6
        assert drift.drift > 0.05

    def test_wong_dispute_both_views(self, corpus):
        comparison = high_ep_peak_spot_comparison(corpus)
        # High-EP servers do peak early (Wong's observation holds)...
        assert comparison["high_ep_low_spot_share_full"] > 0.8
        # ...but the *population* share at 60% stays tiny (the rebuttal).
        assert comparison["share_60_full"] == pytest.approx(0.0188, abs=0.006)
