"""Tests for the deterministic fault-injection harness."""

import pickle

import pytest

from repro.core.faults import (
    ERROR_KINDS,
    MODES,
    FaultPlan,
    FaultSpec,
    active_plan,
    fire,
    install,
    iter_sites,
    should_corrupt,
)
from repro.core.resilience import (
    BuildError,
    CacheError,
    DataError,
    TransientError,
)


class TestFaultSpec:
    def test_defaults_pin_fail_once(self):
        spec = FaultSpec(site="cache.read")
        assert spec.mode == "fail-once"
        assert spec.times == 1
        assert spec.raises

    def test_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="")
        with pytest.raises(ValueError, match="mode"):
            FaultSpec(site="x", mode="explode")
        with pytest.raises(ValueError, match="error kind"):
            FaultSpec(site="x", error="cosmic")
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="x", mode="fail-n")
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="x", mode="fail", times=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="x", mode="latency")

    def test_glob_matching(self):
        spec = FaultSpec(site="builder.fig2*")
        assert spec.matches("builder.fig20")
        assert spec.matches("builder.fig21")
        assert not spec.matches("builder.fig3")
        assert not spec.matches("resource.fig20")

    @pytest.mark.parametrize(
        ("kind", "expected"),
        [
            ("transient", TransientError),
            ("data", DataError),
            ("build", BuildError),
            ("cache", CacheError),
            ("os", OSError),
        ],
    )
    def test_error_kinds(self, kind, expected):
        error = FaultSpec(site="x", error=kind).build_error("cache.write")
        assert isinstance(error, expected)
        assert sorted(ERROR_KINDS) == sorted(
            ["transient", "data", "build", "cache", "os"]
        )

    def test_os_kind_simulates_enospc(self):
        error = FaultSpec(site="x", error="os").build_error("cache.write")
        assert error.errno == 28

    def test_dict_round_trip(self):
        for spec in (
            FaultSpec(site="builder.*", mode="fail", error="build"),
            FaultSpec(site="cache.read", mode="fail-n", times=3),
            FaultSpec(site="dataset.io", mode="latency", delay_s=0.5),
            FaultSpec(site="cache.read", mode="corrupt"),
            FaultSpec(site="x", message="custom detail"),
        ):
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultSpec.from_dict({"site": "x", "when": "always"})
        with pytest.raises(ValueError, match="site"):
            FaultSpec.from_dict({"mode": "fail"})


class TestFaultPlan:
    def test_fail_once_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec(site="dataset.io")])
        with pytest.raises(TransientError):
            plan.fire("dataset.io")
        plan.fire("dataset.io")  # budget exhausted: no raise
        assert plan.fired("dataset.io") == 1

    def test_fail_n_budget(self):
        plan = FaultPlan(
            [FaultSpec(site="cache.*", mode="fail-n", times=2, error="cache")]
        )
        for _ in range(2):
            with pytest.raises(CacheError):
                plan.fire("cache.read")
        plan.fire("cache.read")
        assert plan.fired() == 2

    def test_fail_mode_is_unbounded(self):
        plan = FaultPlan([FaultSpec(site="b", mode="fail", error="build")])
        for _ in range(5):
            with pytest.raises(BuildError):
                plan.fire("b")
        assert plan.fired("b") == 5

    def test_latency_sleeps_then_proceeds(self, monkeypatch):
        import repro.core.faults as faults_module

        slept = []
        monkeypatch.setattr(faults_module.time, "sleep", slept.append)
        plan = FaultPlan(
            [FaultSpec(site="dataset.io", mode="latency", delay_s=0.25)]
        )
        plan.fire("dataset.io")
        assert slept == [0.25]
        assert plan.log == [("dataset.io", "latency")]

    def test_corrupt_claimed_via_should_corrupt(self):
        plan = FaultPlan(
            [FaultSpec(site="cache.read", mode="corrupt", times=1)]
        )
        plan.fire("cache.read")  # corrupt triggers never raise
        assert plan.should_corrupt("cache.read")
        assert not plan.should_corrupt("cache.read")  # budget spent

    def test_unbounded_corrupt_keeps_firing(self):
        plan = FaultPlan([FaultSpec(site="cache.read", mode="corrupt")])
        assert plan.should_corrupt("cache.read")
        assert plan.should_corrupt("cache.read")

    def test_take_claims_without_raising(self):
        plan = FaultPlan([FaultSpec(site="ensemble.worker")])
        assert plan.take("ensemble.worker")
        assert not plan.take("ensemble.worker")
        assert plan.fired("ensemble.worker") == 1

    def test_reset_rearms(self):
        plan = FaultPlan([FaultSpec(site="s")])
        with pytest.raises(TransientError):
            plan.fire("s")
        plan.reset()
        assert plan.fired() == 0
        with pytest.raises(TransientError):
            plan.fire("s")

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec(site="builder.fig5", mode="fail", error="build"),
                FaultSpec(site="cache.read", mode="fail-n", times=2),
            ],
            seed=11,
        )
        restored = FaultPlan.loads(plan.dumps())
        assert restored.specs == plan.specs
        assert restored.seed == 11
        path = tmp_path / "plan.json"
        path.write_text(plan.dumps())
        assert FaultPlan.load(path).specs == plan.specs

    def test_modes_catalog(self):
        assert MODES == ("fail", "fail-once", "fail-n", "latency", "corrupt")

    def test_pickle_round_trip_recreates_lock(self):
        plan = FaultPlan([FaultSpec(site="s", mode="fail-n", times=2)])
        with pytest.raises(TransientError):
            plan.fire("s")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fired("s") == 1  # counter state travels
        with pytest.raises(TransientError):
            clone.fire("s")  # and the lock works after restore

    def test_iter_sites(self):
        plan = FaultPlan(
            [FaultSpec(site="a"), FaultSpec(site="b", mode="fail")]
        )
        assert list(iter_sites(plan)) == ["a", "b"]


class TestAmbientPlan:
    def test_install_scopes_the_plan(self):
        plan = FaultPlan([FaultSpec(site="dataset.io")])
        assert active_plan() is None
        with install(plan) as installed:
            assert installed is plan
            assert active_plan() is plan
            with pytest.raises(TransientError):
                fire("dataset.io")
        assert active_plan() is None

    def test_install_nests(self):
        outer, inner = FaultPlan(), FaultPlan()
        with install(outer):
            with install(inner):
                assert active_plan() is inner
            assert active_plan() is outer

    def test_module_fire_is_noop_without_a_plan(self):
        fire("dataset.io")
        assert not should_corrupt("cache.read")

    def test_explicit_plan_overrides_ambient(self):
        ambient = FaultPlan([FaultSpec(site="s")])
        explicit = FaultPlan([FaultSpec(site="s", error="data")])
        with install(ambient):
            with pytest.raises(DataError):
                fire("s", explicit)
        assert ambient.fired() == 0


class TestDatasetIoSite:
    def test_load_and_save_consult_the_ambient_plan(self, tmp_path, corpus):
        from repro.dataset.io import load_corpus, save_corpus

        path = tmp_path / "corpus.csv"
        plan = FaultPlan(
            [FaultSpec(site="dataset.io", mode="fail-n", times=2,
                       error="data")]
        )
        with install(plan):
            with pytest.raises(DataError):
                save_corpus(corpus, path)
            with pytest.raises(DataError):
                load_corpus(path)
            save_corpus(corpus, path)  # budget spent: both calls pass
            assert len(load_corpus(path)) == len(corpus)
        assert plan.fired("dataset.io") == 2
