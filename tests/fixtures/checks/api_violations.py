"""Fixture: a CLI command module that bypasses the dispatch table."""

from repro.core.registry import REGISTRY


def _cmd_rogue_list(out):
    """Violation: prints engine internals, never touches repro.api."""
    for figure_id in REGISTRY:
        print(figure_id, file=out)
    return 0


def _cmd_routed_list(args, context, out):
    """Clean: routes through the dispatch table."""
    from repro.api import ListArtifactsQuery, execute

    result = execute(ListArtifactsQuery(), context)
    print(result.text, file=out)
    return result.exit_code


def helper_without_prefix(out):
    """Not a CLI command; REP212 does not apply."""
    print("hi", file=out)
