"""Fixture: callee module of the seed-chain tree (REP123)."""

import numpy as np


def make_stream(seed):
    return np.random.default_rng(seed)
