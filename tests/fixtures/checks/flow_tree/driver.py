"""Fixture: callers pinning a callee's seed across modules (REP123)."""

import streams


def replay(seed, count):
    rng = streams.make_stream(seed=1234)  # REP123
    return rng.normal(size=count)


def threaded(seed, count):
    rng = streams.make_stream(seed=seed)  # derived: clean
    return rng.normal(size=count)


def excused(seed, count):  # repro-checks: ignore[REP123]
    rng = streams.make_stream(seed=4321)  # def-line suppression applies
    return rng.normal(size=count)
