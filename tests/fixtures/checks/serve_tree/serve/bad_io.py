"""Fixture: unbounded waits and queues inside a serve module."""

import asyncio

jobs = asyncio.Queue()  # REP306: unbounded
lifo = asyncio.LifoQueue(maxsize=0)  # REP306: explicit infinite
bounded = asyncio.Queue(maxsize=128)  # ok


async def respond(writer):
    writer.write(b"ok")
    await writer.drain()  # REP506: can park forever
    await asyncio.wait_for(writer.drain(), 5.0)  # ok: bounded


async def close(writer):
    writer.close()
    await writer.wait_closed()  # REP506: can park forever
    await asyncio.wait_for(writer.wait_closed(), 5.0)  # ok: bounded
