"""Fixture: engine calls run directly in serve coroutines."""

import asyncio

from repro.api import build_artifact, execute
from repro.api import dispatch


async def answer(request, context):
    return execute(request, context)  # REP307: blocks the loop


async def figure(study, figure_id):
    return build_artifact(study, figure_id)  # REP307: blocks the loop


async def answer_qualified(request, context):
    return dispatch.execute(request, context)  # REP307: blocks the loop


async def offloaded(request, context):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(  # ok: lambda runs off-loop
        None, lambda: execute(request, context)
    )


async def offloaded_named(request, context):
    loop = asyncio.get_running_loop()

    def job():
        return execute(request, context)  # ok: sync offload target

    return await loop.run_in_executor(None, job)
