"""Fixture: the same patterns outside the serve path are not flagged."""

import asyncio

work = asyncio.Queue()  # not in a serve path: REP306 stays quiet


async def flush(writer):
    await writer.drain()  # not in a serve path: REP506 stays quiet
