"""Fixture: the same patterns outside the serve path are not flagged."""

import asyncio

from repro.api import execute

work = asyncio.Queue()  # not in a serve path: REP306 stays quiet


async def flush(writer):
    await writer.drain()  # not in a serve path: REP506 stays quiet


async def batch(requests, context):
    # not in a serve path: REP307 stays quiet
    return [execute(request, context) for request in requests]
