"""Fixture: SharedMemory lifecycle patterns for REP505."""

import numpy as np
from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leaky_create(n):
    segment = shared_memory.SharedMemory(create=True, size=n)  # REP505
    view = np.ndarray((n,), dtype=np.uint8, buffer=segment.buf)
    return view.sum()


def leaky_attach(name):
    segment = SharedMemory(name=name)  # REP505
    return bytes(segment.buf[:4])


def managed_create(n):
    segment = shared_memory.SharedMemory(create=True, size=n)
    try:
        view = np.ndarray((n,), dtype=np.uint8, buffer=segment.buf)
        return view.sum()
    finally:
        segment.close()
        segment.unlink()


def managed_attach(name):
    with SharedMemory(name=name) as segment:
        return bytes(segment.buf[:4])


def unrelated(name):
    segment = open(name)
    return segment.read()
