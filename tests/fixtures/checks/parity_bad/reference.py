"""Violation fixture for the REP401/REP402/REP404 swap-table rules."""

import repro.dataset.ghostmod as _gone
import repro.dataset.synthkernels as _syn


def _ref_vec_kernel(values, rng, extra=1.0):
    """Reference twin with a drifted signature (REP402)."""
    return [value * extra for value in values]


def _ref_ghost_kernel(values, rng):
    """Reference twin whose live kernel does not exist (REP401)."""
    return list(values)


def _ref_gone(values, rng):
    """Reference twin whose module does not resolve (REP401)."""
    return list(values)


_SWAPS = (
    (_syn, "vec_kernel", _ref_vec_kernel),
    (_syn, "ghost_kernel", _ref_ghost_kernel),
    (_gone, "gone_kernel", _ref_gone),
)
