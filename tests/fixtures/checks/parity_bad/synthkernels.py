"""Live-kernel sibling for the parity fixture."""


def vec_kernel(values, rng):
    """Vectorized kernel paired with a drifted reference twin."""
    return [value for value in values]


def orphan_kernel(values, rng):
    """Seeded kernel with no reference twin and no marker (REP404)."""
    return list(values)


# parity: output pinned elsewhere; intentionally unmirrored.
def marked_kernel(values, rng):
    """Seeded kernel excused by the parity marker."""
    return list(values)


def pure_shape(values):
    """No rng parameter -- never flagged."""
    return len(values)
