"""Violation fixture for the REP403 batch-engine drift rule."""


class ServiceEngine:
    """Event engine stub."""

    def advance(self, arrivals, until):
        """Event-granular advance."""
        return until


class BatchServiceEngine:
    """Batch twin whose signature drifts without a marker."""

    def advance(self, arrival_times, work_factors, until):
        """Batch advance with a drifted signature (REP403)."""
        return until
