"""Violation fixture for the REP10x determinism rules."""

import random
import time

import numpy as np

np.random.seed(42)
values = np.random.normal(0.0, 1.0, size=8)
lucky = random.random()
started = time.time()
rng = np.random.default_rng()


def sample(count, rng=None):
    """Hidden constant-seed fallback (REP106)."""
    if rng is None:
        rng = np.random.default_rng(0)
    return rng.normal(size=count)


def allowed(count, rng=None):
    """Same fallback, excused by an inline suppression."""
    if rng is None:
        rng = np.random.default_rng(0)  # repro-checks: ignore[REP106]
    return rng.normal(size=count)
