"""Violation fixture for the REP6xx hot-path rules (marker scope)."""

import numpy as np


def loops_rows(table: np.ndarray) -> float:  # hot
    total = 0.0
    for _row in table:  # REP601
        total = total + 1.0
    return total


def counts_index(col: np.ndarray) -> float:  # hot
    acc = 0.0
    for i in range(len(col)):  # REP601
        acc += float(col[i])  # REP602 + REP603
    return acc


def grows(parts: np.ndarray) -> np.ndarray:  # hot
    out = np.zeros(1)
    for _part in parts:  # REP601
        out = np.concatenate([out, out])  # REP604
    return np.append(out, 1.0)  # REP604


def copies(table: np.ndarray) -> np.ndarray:  # hot
    return (table * 2.0).copy()  # REP605


def item_boxing(col: np.ndarray, flags) -> float:  # hot
    total = 0.0
    for _flag in flags:
        total = total + col.item()  # REP602
    return total


def excused(col: np.ndarray) -> float:  # hot  # repro-checks: ignore[REP601]
    total = 0.0
    for _value in col:  # suppressed by the def-line comment
        total = total + 1.0
    return total


def cold_loop(table: np.ndarray) -> float:
    total = 0.0
    for _row in table:  # not hot: no marker, module not in the hot set
        total = total + 1.0
    return total
