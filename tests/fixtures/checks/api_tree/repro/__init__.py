"""Fixture package root."""
