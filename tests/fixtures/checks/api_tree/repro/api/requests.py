"""Fixture request catalog with one of each REP211 violation."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class QueryRequest:
    """Fixture base."""

    family: ClassVar[str] = ""

    seed: int = 2016


@dataclass(frozen=True)
class DupAQuery(QueryRequest):
    """Clean: frozen, registered, catalogued, unique tag."""

    family: ClassVar[str] = "dup"


@dataclass(frozen=True)
class DupBQuery(QueryRequest):
    """Violation: reuses the 'dup' family tag."""

    family: ClassVar[str] = "dup"


@dataclass
class UnfrozenQuery(QueryRequest):
    """Violation: dataclass but not frozen."""

    family: ClassVar[str] = "unfrozen"


@dataclass(frozen=True)
class OrphanQuery(QueryRequest):
    """Violation: never registered in the dispatch table."""

    family: ClassVar[str] = "orphan"


@dataclass(frozen=True)
class MissingCatalogQuery(QueryRequest):
    """Violation: registered but absent from REQUEST_TYPES."""

    family: ClassVar[str] = "missing"


@dataclass(frozen=True)
class NoTagQuery(QueryRequest):
    """Violation: declares no literal family tag."""


REQUEST_TYPES = (DupAQuery, DupBQuery, UnfrozenQuery, OrphanQuery, NoTagQuery)
