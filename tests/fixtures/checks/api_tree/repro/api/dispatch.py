"""Fixture dispatch table for the REP211 fixture catalog."""

from repro.api.requests import (
    DupAQuery,
    DupBQuery,
    MissingCatalogQuery,
    NoTagQuery,
    UnfrozenQuery,
)


def handler(request_type):
    """Fixture registration decorator."""

    def register(fn):
        return fn

    return register


@handler(DupAQuery)
def _handle_dup_a(request, context):
    """Handles DupAQuery."""


@handler(DupBQuery)
def _handle_dup_b(request, context):
    """Handles DupBQuery."""


@handler(UnfrozenQuery)
def _handle_unfrozen(request, context):
    """Handles UnfrozenQuery."""


@handler(MissingCatalogQuery)
def _handle_missing(request, context):
    """Handles MissingCatalogQuery."""


@handler(NoTagQuery)
def _handle_no_tag(request, context):
    """Handles NoTagQuery."""
