"""Fixture api package."""
