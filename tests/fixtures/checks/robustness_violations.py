"""Violation fixture for the REP50x robustness rules."""

from concurrent.futures import ThreadPoolExecutor, as_completed, wait


def work(batch):
    try:
        return sum(batch)
    except Exception:
        return 0


def run(batches):
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(work, batch) for batch in batches]
        wait(futures)
        totals = []
        for future in as_completed(futures):
            try:
                totals.append(future.result())
            except:
                totals.append(None)
    return totals


def convert(raw):
    try:
        return int(raw)
    except ValueError:
        raise RuntimeError(f"bad value {raw!r}")


def rethrown(raw):
    try:
        return int(raw)
    except ValueError as error:
        raise RuntimeError(f"bad value {raw!r}") from error
