"""Clean fixture: no rule should fire here."""

import numpy as np


def draw(count, seed):
    """Deterministic draws from an explicitly seeded generator."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=count)
