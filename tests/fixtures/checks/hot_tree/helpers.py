"""Fixture: cold helper whose return type flows into the hot module."""

import numpy as np


def load_column(n):
    return np.zeros(n)
