"""Fixture: module-leaf hot scope (every function here is hot)."""

import numpy as np

import helpers


def fold(col: np.ndarray) -> float:
    acc = 0.0
    for i in range(len(col)):  # REP601
        acc = acc + float(col[i])  # REP602 + REP603 (assign form)
    return acc


def iterates_helper(n) -> float:
    total = 0.0
    for value in helpers.load_column(n):  # REP601 via call-graph summary
        total = total + value
    return total
