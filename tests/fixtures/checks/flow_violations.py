"""Violation fixture for the REP12x flow-determinism rules."""

import numpy as np

GLOBAL_RNG = np.random.default_rng(1234)  # REP124


def hidden_seed(count):
    rng = np.random.default_rng(1234)  # REP121
    return rng.normal(size=count)


def derives_from_param(seed, count):
    rng = np.random.default_rng((seed, 1))  # traceable: clean
    return rng.normal(size=count)


def reseeds(rng, seed, count):
    fresh = np.random.default_rng(seed)  # REP122: discards the caller rng
    return fresh.normal(size=count)


def guarded_fallback(count, rng=None, seed=None):
    if rng is None:
        rng = np.random.default_rng(seed)  # guarded: clean
    return rng.normal(size=count)
