"""Fixture: callers of resource producers (REP511/REP512)."""

import pools


def leaks_discarded(workers):
    pools.make_pool(workers)  # REP511: result discarded


def leaks_bound(workers, jobs):
    pool = pools.make_pool(workers)  # REP511: never reclaimed
    return [pool.submit(job) for job in jobs]


def leaks_segment(n):
    segment = pools.make_segment(n)  # REP511: never reclaimed
    return bytes(segment.buf[:4])


def reclaims(workers, jobs):
    pool = pools.make_pool(workers)
    try:
        return [pool.submit(job) for job in jobs]
    finally:
        pool.shutdown()


def hands_onward(workers):
    return pools.make_pool(workers)  # obligation moves to our caller


class FleetRunner:
    def __init__(self, workers):
        self.pool = pools.make_pool(workers)  # REP512: no closer method

    def submit(self, job):
        return self.pool.submit(job)


class ManagedRunner:
    def __init__(self, workers):
        self.pool = pools.make_pool(workers)

    def submit(self, job):
        return self.pool.submit(job)

    def close(self):
        self.pool.shutdown()
