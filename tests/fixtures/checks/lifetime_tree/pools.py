"""Fixture: resource producers audited through the call graph."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.shared_memory import SharedMemory


def make_pool(workers):
    return ProcessPoolExecutor(max_workers=workers)


def make_segment(n):
    segment = SharedMemory(create=True, size=n)
    return segment  # escape: REP505 stays quiet, REP511 audits callers
