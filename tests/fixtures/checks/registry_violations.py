"""Violation fixture for the REP20x registry rules."""

from repro.core.registry import ArtifactSpec

SPECS = (
    ArtifactSpec("eq9", "build_eq9", "dangling dep", ("figX",), ("figure",)),
    ArtifactSpec("loop_a", "build_loop_a", "cycle", ("loop_b",), ("figure",)),
    ArtifactSpec("loop_b", "build_loop_b", "cycle", ("loop_a",), ("figure",)),
    ArtifactSpec("tagged", "build_tagged", "bad tag", ("corpus",), ("graph",)),
    ArtifactSpec("ghost", "build_missing", "no method", ("corpus",), ("table",)),
    ArtifactSpec("eq9", "build_eq9", "duplicate id", ("corpus",), ("scalar",)),
)


class Study:
    """Stub Study so the AST builder check resolves in-file."""

    def build_eq9(self):
        """Builder stub."""

    def build_loop_a(self):
        """Builder stub."""

    def build_loop_b(self):
        """Builder stub."""

    def build_tagged(self):
        """Builder stub."""
