"""Violation fixture for REP513 local resource leaks."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def leaky_pool(jobs):
    pool = ProcessPoolExecutor(max_workers=2)  # REP513
    return [pool.submit(job) for job in jobs]


def leaky_file(path):
    handle = open(path)  # REP513
    return handle.read()


def chained_read(path):
    return open(path).read()  # REP513: the temporary can never be closed


def leaky_memmap(path):
    mm = np.memmap(path, dtype="uint8", mode="r")  # REP513
    return int(mm[0])


def managed_file(path):
    with open(path) as handle:
        return handle.read()


def deferred_with(path):
    handle = open(path)
    with handle:
        return handle.read()


def reclaimed_pool(jobs):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return [pool.submit(job) for job in jobs]
    finally:
        pool.shutdown()


def handed_off(path):
    handle = open(path)
    return handle  # the close obligation moves to the caller
