"""Violation fixture for the REP30x concurrency rules."""

from concurrent.futures import ThreadPoolExecutor

from repro.core.registry import ArtifactSpec

CACHE = {}
COUNTER = 0


class Settings:
    """Module-level class whose attributes are shared state."""

    flag = False


SPECS = (
    ArtifactSpec("shared", "build_shared", "writes", ("corpus",), ("scalar",)),
)


class Study:
    """Stub Study with one mutating builder."""

    def build_shared(self):
        """Builder that breaks every concurrency invariant."""
        global COUNTER
        COUNTER += 1
        Settings.flag = True
        CACHE["hit"] = COUNTER
        self._memo = CACHE
        return self._memo


def tally(item):
    """Worker dispatched to the pool below."""
    CACHE.update({item: True})
    return item


def run_pool(items):
    """Dispatch ``tally`` by name, marking it pool-executed."""
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(tally, items))


def bad_default(seen=[]):
    """Mutable default argument (REP305, warning)."""
    seen.append(1)
    return seen
