"""Bit-identity tests for the columnar fleet engines.

The contract (same as the batch SSJ engine's parity suite): the scalar
paths in ``placement.py``, ``jobs.py``, and ``trace.py`` are the
reference, and the columnar twins must reproduce every output object
*exactly* -- same floats, same ordering, same dict insertion order --
on the seed corpus fleet.  No tolerances anywhere in this file.
"""

import numpy as np
import pytest

from repro.cluster.batch_placement import (
    AUTO_THRESHOLD,
    BatchPlacementEngine,
    resolve_backend,
)
from repro.cluster.batch_trace import BatchTraceReplay, resolve_trace_backend
from repro.cluster.fleet_arrays import FleetArrays, tile_fleet
from repro.cluster.jobs import (
    FirstFitDecreasing,
    Job,
    PeakSpotAware,
    compare_schedulers,
    synthesize_jobs,
)
from repro.cluster.placement import (
    _utilization_for,
    ep_aware_placement,
    max_throughput_under_cap,
    pack_to_full_placement,
)
from repro.cluster.regions import power_at, throughput_at
from repro.cluster.trace import (
    compare_policies,
    daily_saving,
    diurnal_trace,
    replay_trace,
)
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.power.microarch import Codename


@pytest.fixture(scope="module")
def fleet(corpus):
    return list(corpus.by_hw_year_range(2013, 2016))


@pytest.fixture(scope="module")
def arrays(fleet):
    return FleetArrays.from_records(fleet)


@pytest.fixture(scope="module")
def capacity(fleet):
    return sum(
        level.ssj_ops
        for server in fleet
        for level in server.levels
        if level.target_load == 1.0
    )


def _placement_key(outcome):
    """Every observable float and ordering of a PlacementOutcome."""
    return (
        outcome.policy,
        outcome.demand_ops,
        outcome.unused_idle_power_w,
        [
            (a.server.result_id, a.utilization, a.throughput_ops, a.power_w)
            for a in outcome.assignments
        ],
    )


def _server(result_id="z1", max_ops=10000.0, idle=0.3, peak_w=200.0, loads=None):
    loads = loads or [round(0.1 * i, 1) for i in range(1, 11)]
    levels = [
        LoadLevel(
            target_load=u,
            ssj_ops=max_ops * u,
            average_power_w=peak_w * (idle + (1 - idle) * u),
        )
        for u in loads
    ]
    return SpecPowerResult(
        result_id=result_id,
        vendor="Acme",
        model="AS-1",
        form_factor="2U",
        hw_year=2014,
        published_year=2015,
        codename=Codename.HASWELL,
        nodes=1,
        chips_per_node=2,
        cores_per_chip=12,
        memory_gb=48.0,
        levels=levels,
        active_idle_power_w=peak_w * idle,
    )


class TestFleetArrays:
    def test_stable_id_order(self, fleet, arrays):
        assert arrays.ids == tuple(r.result_id for r in fleet)
        assert len(arrays) == len(fleet)

    def test_duplicate_ids_raise(self, fleet):
        with pytest.raises(ValueError, match="duplicate"):
            FleetArrays.from_records([fleet[0], fleet[0]])

    def test_heterogeneous_grids_raise(self):
        a = _server("a")
        b = _server("b", loads=[0.25, 0.5, 0.75, 1.0])
        with pytest.raises(ValueError, match="heterogeneous"):
            FleetArrays.from_records([a, b])

    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError, match="empty"):
            FleetArrays.from_records([])

    def test_arrays_write_protected(self, arrays):
        protected = (
            arrays.power,
            arrays.ops,
            arrays.load_grid,
            arrays.ep,
            arrays.score,
            arrays.peak_ee,
            arrays.idle_power_w,
            arrays.full_capacity,
            arrays.spot_capacity,
        )
        for array in protected:
            with pytest.raises(ValueError):
                array[..., :1] = 0.0

    def test_metric_vectors_gathered_from_records(self, fleet, arrays):
        assert arrays.ep.tolist() == [r.ep for r in fleet]
        assert arrays.score.tolist() == [r.overall_score for r in fleet]
        assert arrays.peak_ee.tolist() == [r.peak_ee for r in fleet]
        assert arrays.primary_peak_spot.tolist() == [
            r.primary_peak_spot for r in fleet
        ]

    @pytest.mark.parametrize("u", [0.0, 0.05, 1.0 / 3.0, 0.6, 0.77, 1.0])
    def test_power_and_throughput_match_scalar(self, fleet, arrays, u):
        powers = arrays.power_at(u)
        ops = arrays.throughput_at(u)
        for row, server in enumerate(fleet):
            assert powers[row] == power_at(server, u)
            assert ops[row] == throughput_at(server, u)

    def test_per_row_queries_match_scalar(self, fleet, arrays):
        rng = np.random.default_rng(3)
        u = rng.uniform(0.0, 1.0, size=len(fleet))
        powers = arrays.power_at(u)
        for row, server in enumerate(fleet):
            assert powers[row] == power_at(server, float(u[row]))

    def test_matrix_broadcast_matches_columns(self, arrays):
        rng = np.random.default_rng(4)
        u = rng.uniform(0.0, 1.0, size=(len(arrays), 7))
        full = arrays.power_at(u)
        for t in range(7):
            np.testing.assert_array_equal(full[:, t], arrays.power_at(u[:, t]))

    def test_utilization_for_matches_scalar(self, fleet, arrays):
        caps = arrays.full_capacity
        for fraction in (0.0, 0.1, 0.33, 0.7, 1.0, 1.5):
            utils = arrays.utilization_for(caps * fraction)
            for row, server in enumerate(fleet):
                assert utils[row] == _utilization_for(
                    server, float(caps[row] * fraction)
                )

    def test_from_fleet_passthrough(self, arrays):
        assert FleetArrays.from_fleet(arrays) is arrays

    def test_from_fleet_corpus_shares_column_store(self, corpus):
        built = FleetArrays.from_fleet(corpus)
        columns = corpus.columns()
        assert built.power is columns.power_matrix()
        assert built.ops is columns.ops_matrix()
        assert built.load_grid is columns.load_grid()


class TestTileFleet:
    def test_cycles_and_unique_ids(self, fleet):
        tiled = tile_fleet(fleet, 3 * len(fleet) + 5)
        assert len(tiled) == 3 * len(fleet) + 5
        assert len({r.result_id for r in tiled}) == len(tiled)
        assert tiled[: len(fleet)] == fleet
        clone = tiled[len(fleet)]
        assert clone.result_id == f"{fleet[0].result_id}~1"

    def test_clones_share_levels_and_metric_cache(self, fleet):
        tiled = tile_fleet(fleet, len(fleet) + 1)
        clone = tiled[len(fleet)]
        assert clone.levels is fleet[0].levels
        assert clone.ep == fleet[0].ep

    def test_validation(self, fleet):
        with pytest.raises(ValueError):
            tile_fleet([], 5)
        with pytest.raises(ValueError):
            tile_fleet(fleet, 0)


class TestPlacementParity:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.85, 1.0, 1.2])
    @pytest.mark.parametrize("power_off", [False, True])
    @pytest.mark.parametrize(
        "place", [pack_to_full_placement, ep_aware_placement]
    )
    def test_bit_identical_outcomes(
        self, fleet, capacity, fraction, power_off, place
    ):
        demand = fraction * capacity
        scalar = place(fleet, demand, power_off, fleet_backend="scalar")
        columnar = place(fleet, demand, power_off, fleet_backend="columnar")
        assert _placement_key(scalar) == _placement_key(columnar)
        assert scalar.placed_ops == columnar.placed_ops
        assert scalar.total_power_w == columnar.total_power_w

    def test_negative_demand_raises_on_both(self, fleet):
        for backend in ("scalar", "columnar"):
            with pytest.raises(ValueError, match="negative"):
                pack_to_full_placement(fleet, -1.0, fleet_backend=backend)
            with pytest.raises(ValueError, match="negative"):
                ep_aware_placement(fleet, -1.0, fleet_backend=backend)

    @pytest.mark.parametrize("policy", ["ep-aware", "pack-to-full"])
    def test_max_throughput_under_cap_parity(self, fleet, policy):
        scalar = max_throughput_under_cap(
            fleet, 40_000.0, policy, fleet_backend="scalar"
        )
        columnar = max_throughput_under_cap(
            fleet, 40_000.0, policy, fleet_backend="columnar"
        )
        assert _placement_key(scalar) == _placement_key(columnar)

    def test_place_totals_match_outcome_properties(self, fleet, capacity):
        engine = BatchPlacementEngine(fleet)
        for policy in ("pack-to-full", "ep-aware"):
            outcome = engine.place(policy, 0.4 * capacity)
            placed, power = engine.place_totals(policy, 0.4 * capacity)
            assert placed == outcome.placed_ops
            assert power == outcome.total_power_w


class TestSchedulerParity:
    @pytest.fixture(scope="class")
    def jobs(self, fleet):
        batch = synthesize_jobs(fleet, demand_fraction=0.5, seed=4)
        # One job no server can hold, to exercise the unplaced path.
        huge = 10.0 * max(throughput_at(s, 1.0) for s in fleet)
        return batch + [Job(job_id="job-huge", demand_ops=huge)]

    def _schedules_equal(self, a, b):
        assert a.policy == b.policy
        assert a.assignments == b.assignments
        assert list(a.assignments) == list(b.assignments)
        assert a.loads_ops == b.loads_ops
        assert list(a.loads_ops) == list(b.loads_ops)
        assert a.unplaced == b.unplaced
        assert [r.result_id for r in a.fleet] == [r.result_id for r in b.fleet]
        assert a.total_power_w == b.total_power_w
        assert a.placed_ops == b.placed_ops

    @pytest.mark.parametrize("scheduler", [FirstFitDecreasing, PeakSpotAware])
    def test_bit_identical_schedules(self, fleet, jobs, scheduler):
        scalar = scheduler().schedule(fleet, jobs, fleet_backend="scalar")
        columnar = scheduler().schedule(fleet, jobs, fleet_backend="columnar")
        self._schedules_equal(scalar, columnar)
        assert "job-huge" in scalar.unplaced

    def test_compare_schedulers_parity(self, fleet, jobs):
        scalar = compare_schedulers(fleet, jobs, fleet_backend="scalar")
        columnar = compare_schedulers(fleet, jobs, fleet_backend="columnar")
        assert list(scalar) == list(columnar)
        for name in scalar:
            self._schedules_equal(scalar[name], columnar[name])

    def test_schedule_power_w_matches_property(self, fleet, jobs):
        engine = BatchPlacementEngine(fleet)
        schedule = FirstFitDecreasing().schedule(
            fleet, jobs, fleet_backend="scalar"
        )
        assert engine.schedule_power_w(schedule) == schedule.total_power_w


class TestReplayParity:
    @pytest.fixture(scope="class")
    def trace(self):
        return diurnal_trace(steps_per_day=24, noise=0.0)

    @pytest.mark.parametrize("policy", ["ep-aware", "pack-to-full"])
    @pytest.mark.parametrize("power_off", [False, True])
    def test_bit_identical_outcomes(self, fleet, trace, policy, power_off):
        scalar = replay_trace(
            fleet, trace, policy, power_off, fleet_backend="scalar"
        )
        columnar = replay_trace(
            fleet, trace, policy, power_off, fleet_backend="columnar"
        )
        assert scalar == columnar

    def test_compare_policies_and_saving(self, fleet, trace):
        scalar = compare_policies(fleet, trace, fleet_backend="scalar")
        columnar = compare_policies(fleet, trace, fleet_backend="columnar")
        assert list(scalar) == list(columnar)
        assert scalar == columnar
        assert daily_saving(scalar) == daily_saving(columnar)

    def test_unknown_policy_message_matches(self, fleet, trace):
        with pytest.raises(ValueError, match="unknown policy") as scalar_err:
            replay_trace(fleet, trace, "nope", fleet_backend="scalar")
        with pytest.raises(ValueError, match="unknown policy") as batch_err:
            replay_trace(fleet, trace, "nope", fleet_backend="columnar")
        assert str(scalar_err.value) == str(batch_err.value)

    def test_replayer_reuses_engine(self, fleet):
        engine = BatchPlacementEngine(fleet)
        replayer = BatchTraceReplay(engine)
        assert replayer.engine is engine


class TestBackendRouting:
    def test_unknown_backend_raises(self, fleet):
        with pytest.raises(ValueError, match="fleet_backend"):
            pack_to_full_placement(fleet, 0.0, fleet_backend="gpu")

    def test_scalar_resolves_to_none(self, fleet):
        assert resolve_backend(fleet, "scalar") is None
        assert resolve_trace_backend(fleet, "scalar") is None

    def test_auto_small_fleet_falls_back(self, fleet):
        small = fleet[: AUTO_THRESHOLD - 1]
        assert resolve_backend(small, "auto") is None

    def test_auto_large_fleet_engages(self, fleet):
        assert isinstance(resolve_backend(fleet, "auto"), BatchPlacementEngine)
        assert isinstance(
            resolve_trace_backend(fleet, "auto"), BatchTraceReplay
        )

    def test_auto_falls_back_on_duplicate_ids(self, fleet):
        doubled = fleet + fleet
        assert resolve_backend(doubled, "auto") is None
        with pytest.raises(ValueError, match="duplicate"):
            resolve_backend(doubled, "columnar")

    def test_auto_matches_scalar(self, fleet, capacity):
        demand = 0.6 * capacity
        auto = ep_aware_placement(fleet, demand, fleet_backend="auto")
        scalar = ep_aware_placement(fleet, demand, fleet_backend="scalar")
        assert _placement_key(auto) == _placement_key(scalar)

    def test_fleet_arrays_accepted_directly(self, arrays, fleet, capacity):
        direct = pack_to_full_placement(
            arrays, 0.5 * capacity, fleet_backend="auto"
        )
        from_list = pack_to_full_placement(
            fleet, 0.5 * capacity, fleet_backend="scalar"
        )
        assert _placement_key(direct) == _placement_key(from_list)

    def test_study_backends_agree(self, corpus):
        from repro.core.study import Study

        scalar = Study(corpus=corpus, fleet_backend="scalar")
        columnar = Study(corpus=corpus, fleet_backend="columnar")
        a = scalar.figure("placement")
        b = columnar.figure("placement")
        assert a.series == b.series
        assert a.text == b.text


class TestCapacityEdgeCases:
    """Regression tests for the zero-capacity / over-capacity fixes."""

    @pytest.fixture(scope="class")
    def dead(self):
        return _server("dead", max_ops=0.0)

    def test_zero_capacity_server_pins_to_full_utilization(self, dead):
        assert throughput_at(dead, 1.0) == 0.0
        assert _utilization_for(dead, 5.0) == 1.0
        assert _utilization_for(dead, 0.0) == 0.0
        assert _utilization_for(dead, -1.0) == 0.0

    def test_over_capacity_request_pins_to_one(self, fleet):
        server = fleet[0]
        cap = throughput_at(server, 1.0)
        assert _utilization_for(server, cap) == 1.0
        assert _utilization_for(server, 2.0 * cap) == 1.0

    def test_batch_kernel_matches_edges(self, dead):
        arrays = FleetArrays.from_records([dead])
        assert arrays.utilization_for(np.array([5.0]))[0] == 1.0
        assert arrays.utilization_for(np.array([0.0]))[0] == 0.0
        assert arrays.utilization_for(np.array([-1.0]))[0] == 0.0

    def test_schedule_utilization_of_over_capacity(self, dead):
        from repro.cluster.jobs import Schedule

        schedule = Schedule(
            policy="first-fit-decreasing",
            loads_ops={"dead": 3.0},
            fleet=[dead],
        )
        assert schedule.utilization_of(dead) == 1.0

    def test_zero_capacity_fleet_parity(self, dead):
        from dataclasses import replace

        fleet = [replace(dead, result_id=f"dead-{i}") for i in range(3)]
        for place in (pack_to_full_placement, ep_aware_placement):
            scalar = place(fleet, 100.0, fleet_backend="scalar")
            columnar = place(fleet, 100.0, fleet_backend="columnar")
            assert _placement_key(scalar) == _placement_key(columnar)
            assert not scalar.satisfied()
