"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_artifacts(self):
        code, output = _run(["list"])
        assert code == 0
        for figure_id in ("fig1", "fig21", "table2", "eq2", "wong"):
            assert figure_id in output


class TestFigure:
    def test_renders_known_artifact(self):
        code, output = _run(["figure", "table2"])
        assert code == 0
        assert "ThinkServer RD450" in output

    def test_unknown_artifact_fails_cleanly(self, capsys):
        code, _output = _run(["figure", "fig99"])
        assert code == 2

    def test_seed_changes_the_corpus(self):
        _code, a = _run(["--seed", "1", "figure", "fig6"])
        _code, b = _run(["--seed", "2", "figure", "fig6"])
        # Counts are pinned regardless of seed.
        assert "152" in a and "152" in b


class TestGenerate:
    def test_writes_csv(self, tmp_path):
        target = tmp_path / "corpus.csv"
        code, output = _run(["generate", "--out", str(target)])
        assert code == 0
        assert "477" in output
        header = target.read_text().splitlines()[0]
        assert header.startswith("result_id,")
        from repro.dataset.io import load_corpus

        assert len(load_corpus(target)) == 477


class TestValidate:
    def test_clean_corpus_passes(self, tmp_path):
        target = tmp_path / "corpus.csv"
        _run(["generate", "--out", str(target)])
        code, output = _run(["validate", str(target)])
        assert code == 0
        assert "0 error(s)" in output

    def test_corrupted_corpus_fails(self, tmp_path):
        target = tmp_path / "corpus.csv"
        _run(["generate", "--out", str(target)])
        lines = target.read_text().splitlines()
        # Corrupt one row: make the 100% power tiny so the curve is
        # grossly non-monotone.
        header = lines[0].split(",")
        column = header.index("power_100")
        cells = lines[1].split(",")
        cells[column] = "1.0"
        lines[1] = ",".join(cells)
        target.write_text("\n".join(lines) + "\n")
        code, output = _run(["validate", str(target)])
        assert code == 1
        assert "error" in output


class TestReport:
    def test_writes_markdown(self, tmp_path):
        target = tmp_path / "EXPERIMENTS.md"
        code, _output = _run(["report", "--out", str(target)])
        assert code == 0
        text = target.read_text()
        assert "paper vs. measured" in text
        assert "| eq2 |" in text


class TestSweep:
    def test_sweeps_a_testbed_server(self):
        code, output = _run(["sweep", "2"])
        assert code == 0
        assert "Sugon I620-G10" in output
        assert "best memory per core: 4" in output

    def test_rejects_unknown_server(self):
        with pytest.raises(SystemExit):
            _run(["sweep", "9"])


class TestRunAll:
    def test_renders_every_artifact(self, tmp_path):
        directory = tmp_path / "artifacts"
        code, output = _run(["run-all", "--output-dir", str(directory)])
        assert code == 0
        files = sorted(p.name for p in directory.iterdir())
        assert "fig1.txt" in files
        assert "wong.txt" in files
        assert len(files) == 36

    def test_parallel_cached_run_with_report(self, tmp_path):
        directory = tmp_path / "artifacts"
        cache_dir = tmp_path / "cache"
        argv = [
            "--jobs", "4", "--cache-dir", str(cache_dir),
            "run-all", "--output-dir", str(directory), "--report",
        ]
        code, cold = _run(argv)
        assert code == 0
        assert "jobs=4" in cold
        assert "0 cached" in cold
        code, warm = _run(argv)
        assert code == 0
        assert "36 cached" in warm

    def test_injected_fault_with_isolate_quarantines_and_exits_nonzero(
        self, tmp_path
    ):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"seed": 0, "faults": [{"site": "builder.fig5", '
            '"mode": "fail", "error": "build"}]}'
        )
        directory = tmp_path / "artifacts"
        code, output = _run(
            ["run-all", "--output-dir", str(directory),
             "--on-error", "isolate", "--inject", str(plan)]
        )
        assert code == 1
        assert "wrote 35 of 36 artifacts" in output
        assert "fig5: BuildError" in output
        files = sorted(p.name for p in directory.iterdir())
        assert "fig5.txt" not in files
        assert "fig3.txt" in files

    def test_injected_transient_masked_by_retry(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"site": "builder.fig5", "mode": "fail-once", '
            '"error": "transient"}]}'
        )
        directory = tmp_path / "artifacts"
        code, output = _run(
            ["run-all", "--output-dir", str(directory),
             "--on-error", "isolate", "--retry", "2", "--inject", str(plan)]
        )
        assert code == 0
        assert "wrote 36 of 36 artifacts" in output
        assert "ledger" not in output


class TestCacheCommand:
    def test_stats_and_clear(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _run([
            "--cache-dir", str(cache_dir),
            "run-all", "--output-dir", str(tmp_path / "arts"),
        ])
        code, output = _run(["--cache-dir", str(cache_dir), "cache", "stats"])
        assert code == 0
        assert "36 entr(ies)" in output
        code, output = _run(["--cache-dir", str(cache_dir), "cache", "clear"])
        assert code == 0
        assert "removed 36" in output
        code, output = _run(["--cache-dir", str(cache_dir), "cache", "stats"])
        assert "0 entr(ies)" in output
