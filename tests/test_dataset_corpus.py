"""Unit tests for the corpus query API (on the shared corpus)."""

import pytest

from repro.dataset.corpus import Corpus
from repro.power.microarch import Codename, Family


class TestCollectionProtocol:
    def test_length(self, corpus):
        assert len(corpus) == 477

    def test_iteration_and_indexing(self, corpus):
        first = corpus[0]
        assert next(iter(corpus)) is first

    def test_get_by_id(self, corpus):
        result = corpus[10]
        assert corpus.get(result.result_id) is result

    def test_get_unknown_raises(self, corpus):
        with pytest.raises(KeyError):
            corpus.get("nope")

    def test_duplicate_ids_rejected(self, corpus):
        with pytest.raises(ValueError, match="duplicate"):
            Corpus([corpus[0], corpus[0]])


class TestFilters:
    def test_year_filter(self, corpus):
        sub = corpus.by_hw_year(2012)
        assert len(sub) == 131
        assert all(result.hw_year == 2012 for result in sub)

    def test_year_range(self, corpus):
        sub = corpus.by_hw_year_range(2013, 2016)
        assert len(sub) == 56

    def test_family_filter(self, corpus):
        sub = corpus.by_family(Family.NEHALEM)
        assert all(result.family is Family.NEHALEM for result in sub)

    def test_codename_filter(self, corpus):
        sub = corpus.by_codename(Codename.SANDY_BRIDGE_EN)
        assert len(sub) == 22

    def test_node_partition_is_complete(self, corpus):
        assert len(corpus.single_node()) + len(corpus.multi_node()) == len(corpus)

    def test_chips_filter(self, corpus):
        sub = corpus.single_node().by_chips(8)
        assert len(sub) == 6

    def test_memory_per_core_filter(self, corpus):
        sub = corpus.by_memory_per_core(1.5)
        assert len(sub) == 68
        for result in sub:
            assert result.memory_per_core_gb == pytest.approx(1.5, abs=0.02)

    def test_published_year_filter(self, corpus):
        sub = corpus.by_published_year(2016)
        assert all(result.published_year == 2016 for result in sub)

    def test_chained_filters(self, corpus):
        sub = corpus.by_hw_year(2012).single_node().by_chips(2)
        assert all(
            r.hw_year == 2012 and r.nodes == 1 and r.chips_per_node == 2
            for r in sub
        )


class TestEnumerations:
    def test_hw_years_sorted(self, corpus):
        years = corpus.hw_years()
        assert years == sorted(years)
        assert years[0] == 2004 and years[-1] == 2016

    def test_published_years_within_benchmark_era(self, corpus):
        published = corpus.published_years()
        assert min(published) >= 2007

    def test_node_counts(self, corpus):
        assert corpus.node_counts() == [1, 2, 4, 8, 16]

    def test_count_by_hw_year_sums_to_total(self, corpus):
        assert sum(corpus.count_by_hw_year().values()) == 477

    def test_count_by_family_sums_to_total(self, corpus):
        assert sum(corpus.count_by_family().values()) == 477


class TestIdIndex:
    def test_contains_by_id(self, corpus):
        assert corpus[0].result_id in corpus
        assert "nope" not in corpus

    def test_filtered_views_reindex(self, corpus):
        sub = corpus.by_hw_year(2012)
        member = sub[0]
        assert sub.get(member.result_id) is member
        with pytest.raises(KeyError):
            sub.get(corpus.by_hw_year(2005)[0].result_id)

    def test_lookup_is_constant_time(self, corpus):
        import timeit

        first = corpus[0].result_id
        last = corpus[-1].result_id
        t_first = min(
            timeit.repeat(lambda: corpus.get(first), number=2000, repeat=3)
        )
        t_last = min(
            timeit.repeat(lambda: corpus.get(last), number=2000, repeat=3)
        )
        # A linear scan would make the last id ~477x slower; the index
        # keeps both lookups within noise of each other.
        assert t_last < t_first * 20

    def test_fingerprint_exposed(self, corpus):
        digest = corpus.fingerprint()
        assert len(digest) == 64
        assert digest == corpus.fingerprint()


class TestTopFraction:
    def test_top_decile_size(self, corpus):
        top = corpus.top_fraction_by(lambda r: r.ep, 0.10)
        assert len(top) == 48  # round(477 * 0.1)

    def test_top_is_actually_top(self, corpus):
        top = corpus.top_fraction_by(lambda r: r.ep, 0.10)
        threshold = min(r.ep for r in top)
        outside = [r.ep for r in corpus if r.result_id not in
                   {t.result_id for t in top}]
        assert max(outside) <= threshold + 1e-12

    def test_invalid_fraction_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.top_fraction_by(lambda r: r.ep, 0.0)
