"""Tests for the multi-seed ensemble engine."""

import io

import pytest

from repro.core.ensemble import (
    SUMMARY_FIELDS,
    EnsembleResult,
    MetricSummary,
    SeedStatistics,
    resolve_seeds,
    run_ensemble,
    seed_statistics,
)
from repro.core.study import Study


@pytest.fixture(scope="module")
def serial_ensemble():
    return run_ensemble((2016, 7), jobs=1)


class TestResolveSeeds:
    def test_int_expands_from_base_seed(self):
        assert resolve_seeds(3, base_seed=100) == (100, 101, 102)

    def test_sequence_preserved_in_order(self):
        assert resolve_seeds([5, 2, 9]) == (5, 2, 9)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_seeds(0)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            resolve_seeds([])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            resolve_seeds([1, 2, 1])


class TestSeedStatistics:
    def test_headlines_in_plausible_ranges(self, serial_ensemble):
        stats = serial_ensemble.per_seed[0]
        assert isinstance(stats, SeedStatistics)
        assert stats.seed == 2016
        assert stats.servers == 477
        assert 0.0 < stats.ep_mean < 1.0
        assert 0.0 < stats.eq2_r_squared <= 1.0
        assert -1.0 <= stats.corr_ep_idle < 0.0  # higher idle, lower EP
        assert stats.ep_trend_slope > 0.0  # EP improves over hw years
        assert stats.ep_by_year  # populated trend maps

    def test_matches_direct_seed_statistics(self, serial_ensemble):
        assert seed_statistics(7) == serial_ensemble.per_seed[1]


class TestSerialParallelEquivalence:
    def test_parallel_equals_serial_exactly(self, serial_ensemble):
        parallel = run_ensemble((2016, 7), jobs=2)
        assert parallel == serial_ensemble

    def test_seed_order_preserved(self, serial_ensemble):
        assert serial_ensemble.seeds == (2016, 7)
        assert tuple(s.seed for s in serial_ensemble.per_seed) == (2016, 7)


class TestSummaries:
    def test_every_summary_field_present(self, serial_ensemble):
        assert set(serial_ensemble.summaries) == set(SUMMARY_FIELDS)

    def test_summary_statistics_consistent(self, serial_ensemble):
        summary = serial_ensemble.summary("ep_mean")
        assert isinstance(summary, MetricSummary)
        assert len(summary.values) == 2
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.ci_half_width == pytest.approx(
            0.5 * (summary.ci_high - summary.ci_low)
        )

    def test_unknown_metric_rejected(self, serial_ensemble):
        with pytest.raises(KeyError, match="unknown ensemble metric"):
            serial_ensemble.summary("nope")

    def test_render_lists_every_metric(self, serial_ensemble):
        rendered = serial_ensemble.render()
        assert "ensemble over 2 seeds" in rendered
        for name in SUMMARY_FIELDS:
            assert name in rendered


class TestStudyAndCliIntegration:
    def test_study_ensemble_uses_study_seed(self, corpus):
        result = Study(corpus=corpus, seed=7).ensemble(seeds=2)
        assert isinstance(result, EnsembleResult)
        assert result.seeds == (7, 8)

    def test_cli_ensemble_smoke(self):
        from repro.cli import main

        out = io.StringIO()
        assert main(["--seed", "2016", "ensemble", "--seeds", "2",
                     "--per-seed"], out=out) == 0
        text = out.getvalue()
        assert "ensemble over 2 seeds (2016..2017)" in text
        assert "per-seed headline statistics" in text
