"""The examples must keep running: execute each one end to end.

Each example is run in-process (``runpy``) with stdout captured, and a
couple of landmark strings are checked so a silently broken example
cannot pass.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: (script, landmark strings its output must contain)
CASES = [
    ("quickstart.py", ["corpus: 477 published SPECpower results", "eq2"]),
    ("fleet_analysis.py", ["Top codenames by average EP", "CSV export"]),
    ("hardware_tuning.py", ["best memory per core", "ThinkServer RD450"]),
    ("datacenter_placement.py", ["logical clusters", "EP-aware"]),
    ("ssj_run.py", ["governor: ondemand", "overall score"]),
    ("workload_sensitivity.py", ["EP spread across workloads"]),
    ("capacity_planning.py", ["the peak-EE pick costs"]),
    ("reorganization_story.py", ["re-indexing moves yearly average"]),
]


@pytest.mark.parametrize("script,landmarks", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, landmarks, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), script
    for landmark in landmarks:
        assert landmark in output, (script, landmark)
