"""End-to-end integration: the paper's narrative claims, via the Study.

Each test reads like a sentence from the paper and checks it against
the full pipeline (corpus -> analysis -> figure), rather than against
any single module.
"""

import pytest


class TestAbstractClaims:
    def test_claim_1_stagnation_is_specious(self, study):
        """'The specious stagnation ... is mainly caused by the adoption
        of processors of specific microarchitecture.'"""
        stagnation = study.figure("fig7").series["stagnation"]
        dip = stagnation["observed_2013_2014"]
        counterfactual = stagnation["counterfactual_2012_mix"]
        recovery = stagnation["observed_2015_2016"]
        assert dip < counterfactual  # the mix explains the dip
        assert recovery > dip        # and EP recovers afterwards

    def test_claim_2_microarchitecture_drives_ee_more_than_ep(self, study):
        """'Microarchitecture evolution has more influence on energy
        efficiency improvement than energy proportionality.'"""
        corpus = study.corpus
        import numpy as np

        old = corpus.by_hw_year_range(2012, 2012)
        new = corpus.by_hw_year_range(2015, 2016)
        ee_gain = np.mean(new.scores()) / np.mean(old.scores())
        ep_gain = np.mean(new.eps()) / np.mean(old.eps())
        assert ee_gain > 2.0   # EE more than doubles after 2012
        assert ep_gain < 1.1   # EP barely moves

    def test_claim_3_peak_ee_shifts_and_helps_ep(self, study):
        """'Peak energy efficiencies are shifting from 100% to 80% or
        70% utilization and EP improves with such shifting.'"""
        corpus = study.corpus
        import numpy as np

        interior = corpus.filter(lambda r: r.primary_peak_spot <= 0.8)
        full = corpus.filter(lambda r: r.primary_peak_spot >= 1.0)
        assert np.mean(interior.eps()) > np.mean(full.eps())


class TestSectionIII:
    def test_ep_improves_by_a_factor_of_about_2p8(self, study):
        series = study.figure("fig3").series
        years = series["years"]
        avg = dict(zip(years, series["avg"]))
        assert avg[2012] / avg[2005] == pytest.approx(0.82 / 0.30, rel=0.2)

    def test_min_ep_2016_equals_good_2009(self, study):
        """'Newest servers made in 2016 have minimal EP of 0.73, which is
        the greatest EP value in 2009.'"""
        series = study.figure("fig3").series
        years = series["years"]
        min_by_year = dict(zip(years, series["min"]))
        max_by_year = dict(zip(years, series["max"]))
        assert min_by_year[2016] == pytest.approx(max_by_year[2009], abs=0.06)

    def test_economies_of_scale_narrative(self, study):
        fig13 = study.figure("fig13").series
        fig14 = study.figure("fig14").series
        # Multi-node: median EP monotone in node count.
        medians = [fig13[n]["median_ep"] for n in sorted(fig13)]
        assert medians == sorted(medians)
        # Single-node: benefits stop at 2 chips.
        assert fig14[2]["avg_ep"] > fig14[4]["avg_ep"] > fig14[8]["avg_ep"]

    def test_idle_power_is_the_driving_force(self, study):
        eq2 = study.figure("eq2").series
        assert eq2["corr_ep_idle"] < -0.85
        assert eq2["r_squared"] > 0.85


class TestSectionIV:
    def test_fig16_interval_shift(self, study):
        eras = study.figure("fig16").series["eras"]
        early = eras["2004-2012"]
        late = eras["2013-2016"]
        assert early[1.0] > 0.7
        assert late[1.0] < 0.3
        assert late[0.8] > late[1.0]

    def test_asynchrony_both_folds(self, study):
        series = study.figure("asynchrony").series
        report = series["report"]
        # Fold 1: 2012 dominates EP, recent years dominate EE.
        assert report.top_ep_share_2012 > 3 * report.top_ee_share_2012
        assert report.all_recent_in_top_ee
        # Fold 2: small EP/EE overlap.
        assert report.overlap_fraction < 0.4


class TestSectionV:
    def test_memory_configuration_matters(self, study):
        for figure_id, best in (("fig18", 1.75), ("fig19", 4.0), ("fig20", 2.67)):
            series = study.figure(figure_id).series
            assert series["best_memory_per_core"] == pytest.approx(best)

    def test_dvfs_lowers_power_and_efficiency_together(self, study):
        series = study.figure("fig21").series
        for label, points in series["ee"].items():
            values = [v for _, v in points]
            assert values == sorted(values), label  # EE rises with f
        for label, points in series["peak_power"].items():
            values = [v for _, v in points]
            assert values == sorted(values), label  # power rises with f

    def test_placement_guidance_pays_off(self, study):
        series = study.figure("placement").series
        assert series["aware_power_w"] < series["pack_power_w"]


class TestSectionVI:
    def test_wong_rebuttal_shares(self, study):
        series = study.figure("wong").series
        assert series["share_100"] == pytest.approx(0.6925, abs=0.02)
        assert series["share_60"] == pytest.approx(0.0188, abs=0.006)


class TestReproducibilityHygiene:
    def test_figures_are_deterministic(self, study):
        a = study.figure("fig3").series["avg"]
        b = study.figure("fig3").series["avg"]
        assert a == b

    def test_corpus_roundtrip_preserves_figures(self, study, tmp_path):
        from repro.core.study import Study
        from repro.dataset.io import load_corpus, save_corpus

        path = tmp_path / "corpus.csv"
        save_corpus(study.corpus, path)
        clone = Study(corpus=load_corpus(path))
        original = study.figure("fig5").series["landmarks"]
        restored = clone.figure("fig5").series["landmarks"]
        for key in original:
            assert restored[key] == pytest.approx(original[key])
