"""Tests for the lazily-built corpus column store.

Covers ISSUE 5's satellite: cache identity and fingerprint
invalidation on :meth:`Corpus.columns`, filter-chain consistency
(a filtered view's columns match its own records, not the parent's),
empty-corpus behavior, CSR correctness for the ragged peak-spot lists,
and the curve matrices consumed by the fleet engines.
"""

import numpy as np
import pytest

from repro.dataset.columns import (
    _COLUMN_SPECS,
    ColumnSpillStore,
    CorpusColumns,
)
from repro.dataset.corpus import Corpus


class TestStoreLifecycle:
    def test_columns_is_memoized(self, corpus):
        assert corpus.columns() is corpus.columns()

    def test_array_is_memoized(self, corpus):
        columns = corpus.columns()
        assert columns.array("ep") is columns.array("ep")

    def test_stale_store_is_rebuilt_on_fingerprint_mismatch(self, corpus):
        view = corpus.filter(lambda r: True)
        stale = CorpusColumns([], "not-the-real-fingerprint")
        view._columns = stale
        rebuilt = view.columns()
        assert rebuilt is not stale
        assert rebuilt.fingerprint == view.fingerprint()
        assert len(rebuilt) == len(view)

    def test_unknown_column_raises_key_error(self, corpus):
        with pytest.raises(KeyError, match="unknown column"):
            corpus.columns().array("wattage")

    def test_columns_are_write_protected(self, corpus):
        columns = corpus.columns()
        for name in ("ep", "hw_year", "result_id"):
            with pytest.raises(ValueError):
                columns.array(name)[:1] = 0

    def test_len_matches_corpus(self, corpus):
        assert len(corpus.columns()) == len(corpus)


class TestColumnValues:
    def test_every_column_matches_per_record_values(self, corpus):
        columns = corpus.columns()
        for name, (dtype, getter) in _COLUMN_SPECS.items():
            expected = [getter(r) for r in corpus]
            assert columns.array(name).tolist() == expected, name

    def test_scalar_columns_are_bit_identical_to_properties(self, corpus):
        ep = corpus.columns().array("ep")
        for value, record in zip(ep.tolist(), corpus):
            assert value == record.ep

    def test_filter_chain_columns_match_view_records(self, corpus):
        view = corpus.by_hw_year_range(2013, 2016).single_node()
        assert 0 < len(view) < len(corpus)
        columns = view.columns()
        assert columns.array("result_id").tolist() == [
            r.result_id for r in view
        ]
        assert columns.array("ep").tolist() == [r.ep for r in view]
        assert set(columns.array("nodes").tolist()) == {1}

    def test_each_view_gets_its_own_store(self, corpus):
        view = corpus.by_hw_year(2016)
        assert view.columns() is not corpus.columns()
        assert view.columns().fingerprint != corpus.columns().fingerprint


class TestPeakSpotCsr:
    def test_offsets_shape_and_monotonicity(self, corpus):
        columns = corpus.columns()
        offsets = columns.peak_spot_offsets()
        assert offsets.shape == (len(corpus) + 1,)
        assert offsets[0] == 0
        assert offsets[-1] == len(columns.peak_spot_values())
        assert np.all(np.diff(offsets) >= 0)

    def test_slices_reconstruct_per_record_lists(self, corpus):
        columns = corpus.columns()
        values = columns.peak_spot_values()
        offsets = columns.peak_spot_offsets()
        for position, record in enumerate(corpus):
            start, stop = offsets[position], offsets[position + 1]
            assert values[start:stop].tolist() == list(record.peak_ee_spots)


class TestCurveMatrices:
    def test_shapes_and_anchors(self, corpus):
        columns = corpus.columns()
        grid = columns.load_grid()
        power = columns.power_matrix()
        ops = columns.ops_matrix()
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert power.shape == (len(corpus), len(grid))
        assert ops.shape == power.shape
        assert power[:, 0].tolist() == [
            r.active_idle_power_w for r in corpus
        ]
        assert np.all(ops[:, 0] == 0.0)
        assert ops[:, -1].tolist() == [
            max(level.ssj_ops for level in r.levels) for r in corpus
        ]

    def test_fleet_arrays_shares_matrices(self, corpus):
        from repro.cluster.fleet_arrays import FleetArrays

        built = FleetArrays.from_fleet(corpus)
        columns = corpus.columns()
        assert built.power is columns.power_matrix()
        assert built.ops is columns.ops_matrix()


class TestSpillTier:
    def test_spill_matrices_round_trip(self, corpus, tmp_path):
        columns = corpus.columns()
        store = ColumnSpillStore(tmp_path)
        grid, power, ops = columns.spill_matrices(store)
        for mapped in (grid, power, ops):
            assert isinstance(mapped, np.memmap)
        np.testing.assert_array_equal(np.asarray(grid), columns.load_grid())
        np.testing.assert_array_equal(
            np.asarray(power), columns.power_matrix()
        )
        np.testing.assert_array_equal(np.asarray(ops), columns.ops_matrix())

    def test_spill_is_keyed_by_fingerprint(self, corpus, tmp_path):
        columns = corpus.columns()
        store = ColumnSpillStore(tmp_path)
        columns.spill_matrices(store)
        assert store.has(corpus.fingerprint(), "ops_matrix")
        assert (tmp_path / corpus.fingerprint() / "ops_matrix.npy").is_file()

    def test_spilled_files_are_not_rewritten(self, corpus, tmp_path):
        columns = corpus.columns()
        store = ColumnSpillStore(tmp_path)
        columns.spill_matrices(store)
        stamps = {p: p.stat().st_mtime_ns for p in tmp_path.rglob("*.npy")}
        columns.spill_matrices(store)
        assert {
            p: p.stat().st_mtime_ns for p in tmp_path.rglob("*.npy")
        } == stamps

    def test_clear_removes_spilled_columns(self, corpus, tmp_path):
        columns = corpus.columns()
        store = ColumnSpillStore(tmp_path)
        columns.spill_matrices(store)
        removed = store.clear()
        assert removed == 3
        assert not store.has(corpus.fingerprint(), "load_grid")

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "cols"))
        store = ColumnSpillStore()
        assert store.root == tmp_path / "cols"


class TestEmptyCorpus:
    @pytest.fixture(scope="class")
    def empty(self):
        return Corpus([])

    def test_scalar_columns_are_empty(self, empty):
        columns = empty.columns()
        assert len(columns) == 0
        assert columns.array("ep").shape == (0,)
        assert columns.array("result_id").shape == (0,)

    def test_csr_is_empty(self, empty):
        columns = empty.columns()
        assert columns.peak_spot_values().shape == (0,)
        assert columns.peak_spot_offsets().tolist() == [0]

    def test_matrices_raise(self, empty):
        with pytest.raises(ValueError, match="empty corpus"):
            empty.columns().load_grid()


class TestAnalysisPorts:
    """The analysis functions ported onto columns stay bit-identical."""

    def test_ep_cdf_matches_per_record_values(self, corpus):
        from repro.analysis.cdf import ep_cdf

        cdf = ep_cdf(corpus)
        assert list(cdf.sorted_values) == sorted(r.ep for r in corpus)

    def test_ep_cdf_rejects_empty_corpus(self):
        from repro.analysis.cdf import ep_cdf

        with pytest.raises(ValueError, match="empty sample"):
            ep_cdf(Corpus([]))

    def test_spot_counts_matches_per_record_rounding(self, corpus):
        from collections import Counter

        from repro.analysis.peak_shift import spot_counts

        expected = Counter(
            round(spot, 2) for r in corpus for spot in r.peak_ee_spots
        )
        assert spot_counts(corpus) == dict(sorted(expected.items()))
