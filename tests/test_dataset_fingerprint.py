"""Tests for the stable corpus/result content fingerprints."""

import dataclasses

from repro.dataset.fingerprint import corpus_fingerprint, result_fingerprint
from repro.dataset.synthesis import generate_corpus


class TestStability:
    def test_same_seed_same_fingerprint(self):
        a = generate_corpus(seed=2016)
        b = generate_corpus(seed=2016)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_memoized(self, corpus):
        assert corpus.fingerprint() is corpus.fingerprint()

    def test_order_independent(self, corpus):
        forward = corpus_fingerprint(list(corpus))
        backward = corpus_fingerprint(list(corpus)[::-1])
        assert forward == backward


class TestSensitivity:
    def test_different_seed_different_fingerprint(self):
        assert (
            generate_corpus(seed=1).fingerprint()
            != generate_corpus(seed=2).fingerprint()
        )

    def test_single_field_change_changes_digest(self, corpus):
        results = list(corpus)
        original = corpus_fingerprint(results)
        edited = dataclasses.replace(
            results[0], memory_gb=results[0].memory_gb + 1.0
        )
        assert corpus_fingerprint([edited] + results[1:]) != original

    def test_level_change_changes_digest(self, corpus):
        result = corpus[0]
        original = result_fingerprint(result)
        levels = list(result.levels)
        levels[0] = dataclasses.replace(
            levels[0], average_power_w=levels[0].average_power_w + 0.5
        )
        edited = dataclasses.replace(result, levels=levels)
        assert result_fingerprint(edited) != original

    def test_result_fingerprints_unique_in_corpus(self, corpus):
        digests = {result_fingerprint(result) for result in corpus}
        assert len(digests) == len(corpus)
