"""The CLI's JSON envelope mode and the query/serve subcommands."""

import io
import json

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestJsonFormat:
    def test_list_envelope(self):
        code, raw = run_cli(["--format", "json", "list"])
        assert code == 0
        document = json.loads(raw)
        assert document["family"] == "list"
        assert document["exit_code"] == 0
        assert any(
            a["id"] == "fig3" for a in document["payload"]["artifacts"]
        )

    def test_text_is_embedded_in_the_envelope(self):
        _code, text_raw = run_cli(["list"])
        _code, json_raw = run_cli(["--format", "json", "list"])
        assert json.loads(json_raw)["text"] + "\n" == text_raw

    def test_figure_envelope_carries_provenance(self):
        code, raw = run_cli(["--format", "json", "figure", "fig3"])
        assert code == 0
        document = json.loads(raw)
        assert document["payload"]["artifact_id"] == "fig3"
        assert document["provenance"]["fingerprint"]
        assert document["provenance"]["engine_version"]

    def test_sweep_envelope(self):
        code, raw = run_cli(["--format", "json", "sweep", "2"])
        assert code == 0
        document = json.loads(raw)
        assert document["payload"]["best_memory_per_core_gb"] > 0


class TestQuerySubcommand:
    def test_inline_spec(self):
        code, raw = run_cli(
            ["query", json.dumps({"family": "stats", "metric": "ep"})]
        )
        assert code == 0
        assert "mean" in raw

    def test_spec_format_field_selects_json(self):
        code, raw = run_cli(
            ["query",
             json.dumps({"family": "stats", "metric": "ep",
                         "format": "json"})]
        )
        assert code == 0
        assert json.loads(raw)["family"] == "stats"

    def test_spec_from_file(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"family": "group", "by": "family"}))
        code, raw = run_cli(["query", f"@{spec}"])
        assert code == 0
        assert "grouped by family" in raw

    def test_bad_spec_exits_2(self, capsys):
        code, _raw = run_cli(["query", "{not json"])
        assert code == 2
        assert "query error" in capsys.readouterr().err

    def test_unknown_family_exits_2(self, capsys):
        code, _raw = run_cli(["query", json.dumps({"family": "bogus"})])
        assert code == 2

    def test_fleet_replay_json_matches_query_route(self):
        argv_a = ["--format", "json", "fleet-replay",
                  "--servers", "30", "--steps", "8"]
        spec = {"family": "replay", "servers": 30, "steps": 8,
                "format": "json"}
        _code, via_flags = run_cli(argv_a)
        _code, via_query = run_cli(["query", json.dumps(spec)])
        flags_doc = json.loads(via_flags)
        query_doc = json.loads(via_query)
        assert flags_doc["payload"] == query_doc["payload"]
        assert flags_doc["text"] == query_doc["text"]


class TestServeSubcommandWiring:
    def test_serve_parser_accepts_host_and_port(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9999"]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0" and args.port == 9999

    def test_unknown_format_rejected(self):
        with pytest.raises(SystemExit):
            _build_parser = __import__(
                "repro.cli", fromlist=["_build_parser"]
            )._build_parser
            _build_parser().parse_args(["--format", "xml", "list"])
