"""Unit tests for the EP metric (Eq. 1) and its companions."""

import numpy as np
import pytest

from repro.metrics.ep import (
    TARGET_LOADS_DESCENDING,
    UTILIZATION_LEVELS,
    dynamic_range,
    energy_proportionality,
    ep_from_area,
    ideal_power,
    idle_power_fraction,
    normalize_to_peak_power,
    proportionality_area,
)

LEVELS = list(UTILIZATION_LEVELS)


class TestGridConstants:
    def test_eleven_levels_from_idle_to_full(self):
        assert LEVELS[0] == 0.0
        assert LEVELS[-1] == 1.0
        assert len(LEVELS) == 11

    def test_levels_are_ten_percent_spaced(self):
        steps = np.diff(LEVELS)
        assert np.allclose(steps, 0.1)

    def test_target_loads_descend_from_full(self):
        assert TARGET_LOADS_DESCENDING[0] == 1.0
        assert TARGET_LOADS_DESCENDING[-1] == pytest.approx(0.1)
        assert len(TARGET_LOADS_DESCENDING) == 10


class TestEnergyProportionality:
    def test_ideal_curve_scores_exactly_one(self):
        assert energy_proportionality(LEVELS, LEVELS) == pytest.approx(1.0)

    def test_constant_power_scores_zero(self):
        assert energy_proportionality(LEVELS, [240.0] * 11) == pytest.approx(0.0)

    def test_linear_curve_scores_one_minus_idle(self):
        idle = 0.4
        powers = [idle + (1 - idle) * u for u in LEVELS]
        assert energy_proportionality(LEVELS, powers) == pytest.approx(1 - idle)

    def test_unit_invariance(self):
        powers = [50 + 200 * u**2 for u in LEVELS]
        watts = energy_proportionality(LEVELS, powers)
        kilowatts = energy_proportionality(LEVELS, [p / 1000 for p in powers])
        assert watts == pytest.approx(kilowatts)

    def test_order_invariance(self):
        powers = [50 + 200 * u for u in LEVELS]
        shuffled = list(zip(LEVELS, powers))[::-1]
        assert energy_proportionality(
            [u for u, _ in shuffled], [p for _, p in shuffled]
        ) == pytest.approx(energy_proportionality(LEVELS, powers))

    def test_superlinear_power_scores_below_linear(self):
        idle = 0.3
        linear = [idle + 0.7 * u for u in LEVELS]
        early = [idle + 0.7 * u**0.5 for u in LEVELS]
        assert energy_proportionality(LEVELS, early) < energy_proportionality(
            LEVELS, linear
        )

    def test_deferred_power_scores_above_linear(self):
        idle = 0.3
        linear = [idle + 0.7 * u for u in LEVELS]
        late = [idle + 0.7 * u**3 for u in LEVELS]
        assert energy_proportionality(LEVELS, late) > energy_proportionality(
            LEVELS, linear
        )

    def test_bounded_below_two(self):
        # Nearly free below peak: the theoretical EP supremum is 2.
        powers = [1e-6] * 10 + [100.0]
        value = energy_proportionality(LEVELS, powers)
        assert 1.8 < value < 2.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            energy_proportionality(LEVELS, [1.0] * 10)

    def test_negative_power_rejected(self):
        powers = [1.0] * 11
        powers[3] = -0.1
        with pytest.raises(ValueError, match="non-negative"):
            energy_proportionality(LEVELS, powers)

    def test_duplicate_utilization_rejected(self):
        levels = LEVELS[:]
        levels[4] = levels[5]
        with pytest.raises(ValueError, match="distinct"):
            energy_proportionality(levels, [1.0] * 11)

    def test_out_of_range_utilization_rejected(self):
        levels = LEVELS[:]
        levels[-1] = 1.2
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            energy_proportionality(levels, [1.0] * 11)


class TestArea:
    def test_ideal_area_is_half(self):
        assert proportionality_area(LEVELS, LEVELS) == pytest.approx(0.5)

    def test_missing_idle_point_extends_flat(self):
        # Without an idle measurement the curve holds its lowest value.
        loads = LEVELS[1:]
        powers = [0.5 + 0.5 * u for u in loads]
        area = proportionality_area(loads, powers)
        full = proportionality_area(
            LEVELS, [powers[0]] + powers
        )
        assert area == pytest.approx(full)

    def test_ep_from_area_rejects_negative(self):
        with pytest.raises(ValueError):
            ep_from_area(-0.1)

    def test_ep_from_area_inverts_correctly(self):
        assert ep_from_area(0.5) == pytest.approx(1.0)
        assert ep_from_area(1.0) == pytest.approx(0.0)


class TestIdleAndDynamicRange:
    def test_idle_fraction_of_linear_curve(self):
        powers = [0.25 + 0.75 * u for u in LEVELS]
        assert idle_power_fraction(LEVELS, powers) == pytest.approx(0.25)

    def test_dynamic_range_complements_idle_fraction(self):
        powers = [0.25 + 0.75 * u for u in LEVELS]
        assert dynamic_range(LEVELS, powers) == pytest.approx(0.75)

    def test_idle_fraction_requires_idle_point(self):
        with pytest.raises(ValueError, match="active-idle"):
            idle_power_fraction(LEVELS[1:], [1.0] * 10)


class TestNormalization:
    def test_normalized_peak_is_one(self):
        powers = [60 + 190 * u for u in LEVELS]
        normalized = normalize_to_peak_power(LEVELS, powers)
        assert normalized[-1] == pytest.approx(1.0)

    def test_rejects_zero_peak_power(self):
        with pytest.raises(ValueError, match="positive"):
            normalize_to_peak_power(LEVELS, [0.0] * 11)

    def test_ideal_power_is_identity(self):
        assert np.allclose(ideal_power(LEVELS), LEVELS)

    def test_ideal_power_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ideal_power([0.5, 1.5])
