"""Round-trip tests for corpus CSV persistence."""

import pytest

from repro.dataset.corpus import Corpus
from repro.dataset.io import load_corpus, save_corpus


class TestRoundTrip:
    def test_full_corpus_roundtrips_exactly(self, corpus, tmp_path):
        path = tmp_path / "corpus.csv"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert len(loaded) == len(corpus)
        for original, restored in zip(corpus, loaded):
            assert restored.result_id == original.result_id
            assert restored.hw_year == original.hw_year
            assert restored.published_year == original.published_year
            assert restored.codename is original.codename
            assert restored.nodes == original.nodes
            assert restored.chips_per_node == original.chips_per_node
            assert restored.memory_gb == original.memory_gb
            assert restored.tie_peak_spots == original.tie_peak_spots
            assert restored.active_idle_power_w == original.active_idle_power_w
            for level_a, level_b in zip(
                original.sorted_levels(), restored.sorted_levels()
            ):
                assert level_b.ssj_ops == level_a.ssj_ops
                assert level_b.average_power_w == level_a.average_power_w

    def test_derived_metrics_survive_roundtrip(self, corpus, tmp_path):
        path = tmp_path / "corpus.csv"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        for original, restored in zip(list(corpus)[:25], loaded):
            assert restored.ep == pytest.approx(original.ep)
            assert restored.overall_score == pytest.approx(original.overall_score)
            assert restored.peak_ee_spots == original.peak_ee_spots

    def test_partial_corpus(self, corpus, tmp_path):
        path = tmp_path / "partial.csv"
        subset = Corpus(list(corpus)[:10])
        save_corpus(subset, path)
        assert len(load_corpus(path)) == 10

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_corpus(path)
