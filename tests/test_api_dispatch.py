"""The dispatch table: every family, provenance, caching, parity."""

import json

import pytest

from repro.api import (
    ArtifactQuery,
    CacheQuery,
    CapQuery,
    CdfQuery,
    DISPATCH,
    GenerateQuery,
    GroupQuery,
    ListArtifactsQuery,
    PlacementQuery,
    QueryContext,
    ReplayQuery,
    SweepQuery,
    StatsQuery,
    ValidateQuery,
    execute,
)
from repro.api.requests import REQUEST_TYPES
from repro.core.cache import ENGINE_VERSION, ArtifactCache
from repro.core.study import Study


@pytest.fixture(scope="module")
def context():
    return QueryContext()


def payload_json(result):
    return json.dumps(result.to_dict()["payload"], sort_keys=True)


class TestTable:
    def test_every_family_has_a_handler(self):
        assert set(DISPATCH) == set(REQUEST_TYPES)


class TestFamilies:
    def test_list(self, context):
        result = execute(ListArtifactsQuery(), context)
        assert result.family == "list"
        ids = [entry["id"] for entry in result.payload["artifacts"]]
        assert "fig3" in ids and result.text

    def test_stats(self, context):
        result = execute(StatsQuery(metric="ep"), context)
        assert result.payload["count"] == 477
        assert 0.0 < result.payload["mean"] < 1.5
        assert "mean" in result.text

    def test_stats_slice_is_smaller(self, context):
        full = execute(StatsQuery(), context)
        sliced = execute(
            StatsQuery(hw_year_min=2013, hw_year_max=2016), context
        )
        assert 0 < sliced.payload["count"] < full.payload["count"]

    def test_stats_empty_slice_raises(self, context):
        with pytest.raises(ValueError, match="empty corpus slice"):
            execute(StatsQuery(hw_year_min=1901, hw_year_max=1902), context)

    def test_cdf(self, context):
        result = execute(CdfQuery(metric="ep", lo=0.2, hi=0.4), context)
        quantiles = result.payload["quantiles"]
        assert quantiles["p10"] <= quantiles["p50"] <= quantiles["p90"]
        assert 0.0 <= result.payload["band"]["share"] <= 1.0
        assert len(result.payload["deciles"]) == 10

    def test_group(self, context):
        result = execute(GroupQuery(by="family"), context)
        assert sum(g["count"] for g in result.payload["groups"]) > 0

    def test_placement(self, context):
        result = execute(PlacementQuery(servers=30), context)
        assert result.payload["satisfied"]
        assert result.payload["servers_used"] <= 30

    def test_cap_respects_budget(self, context):
        result = execute(CapQuery(power_cap_w=5000.0, servers=30), context)
        assert result.payload["total_power_w"] <= 5000.0

    def test_replay(self, context):
        result = execute(ReplayQuery(servers=30, steps=8), context)
        assert result.payload["energy_kwh"] > 0.0
        assert "kWh/day" in result.text

    def test_sweep(self, context):
        result = execute(SweepQuery(server=2), context)
        assert result.payload["best_memory_per_core_gb"] > 0.0
        assert "best memory per core" in result.text

    def test_artifact(self, context):
        result = execute(ArtifactQuery(artifact_id="fig3"), context)
        assert result.payload["artifact_id"] == "fig3"
        assert result.text.startswith("== fig3:")

    def test_unknown_artifact_raises(self, context):
        with pytest.raises(KeyError):
            execute(ArtifactQuery(artifact_id="fig99"), context)

    def test_generate_and_validate(self, tmp_path, context):
        out = tmp_path / "corpus.csv"
        written = execute(GenerateQuery(out=str(out)), context)
        assert written.payload["results"] == 477 and out.is_file()
        checked = execute(ValidateQuery(path=str(out)), context)
        assert checked.exit_code == 0
        assert checked.payload["errors"] == 0


class TestProvenance:
    def test_fleet_queries_record_the_concrete_backend(self, context):
        auto = execute(ReplayQuery(servers=30, steps=8), context)
        assert auto.provenance.fleet_backend in ("scalar", "columnar")
        forced = execute(
            ReplayQuery(servers=30, steps=8, fleet_backend="scalar"), context
        )
        assert forced.provenance.fleet_backend == "scalar"

    def test_non_fleet_queries_have_no_backend(self, context):
        assert execute(StatsQuery(), context).provenance.fleet_backend == "-"

    def test_corpus_families_carry_the_fingerprint(self, context):
        result = execute(StatsQuery(), context)
        assert result.provenance.fingerprint == context.corpus(
            2016
        ).fingerprint()
        assert execute(SweepQuery(server=2), context).provenance.fingerprint == ""

    def test_envelope_serializes(self, context):
        document = json.loads(execute(StatsQuery(), context).to_json())
        assert document["provenance"]["engine_version"] == ENGINE_VERSION
        assert document["provenance"]["api_version"] == "1"


class TestBackendParity:
    def test_backends_share_one_spec_key_and_payload(self, context):
        results = [
            execute(
                ReplayQuery(servers=30, steps=8, fleet_backend=backend),
                context,
            )
            for backend in ("auto", "scalar", "columnar", "sharded")
        ]
        keys = {r.provenance.spec_key for r in results}
        assert len(keys) == 1
        payloads = {payload_json(r) for r in results}
        assert len(payloads) == 1
        # the text echoes the *requested* backend mode (pinned CLI
        # format); everything after that first line must agree
        texts = {r.text.split("\n", 1)[1] for r in results}
        assert len(texts) == 1

    def test_placement_backends_bit_identical(self, context):
        scalar = execute(
            PlacementQuery(servers=30, fleet_backend="scalar"), context
        )
        columnar = execute(
            PlacementQuery(servers=30, fleet_backend="columnar"), context
        )
        assert payload_json(scalar) == payload_json(columnar)
        assert scalar.provenance.spec_key == columnar.provenance.spec_key

    def test_sharded_backend_is_recorded_and_bit_identical(self, context):
        sharded = execute(
            CapQuery(servers=30, power_cap_w=4000.0, fleet_backend="sharded"),
            context,
        )
        columnar = execute(
            CapQuery(servers=30, power_cap_w=4000.0, fleet_backend="columnar"),
            context,
        )
        assert sharded.provenance.fleet_backend == "sharded"
        assert payload_json(sharded) == payload_json(columnar)
        assert sharded.provenance.spec_key == columnar.provenance.spec_key


class TestDiskCache:
    def test_round_trip_serves_identical_payload(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        context = QueryContext(cache=cache)
        first = execute(ReplayQuery(servers=30, steps=8), context)
        second = execute(ReplayQuery(servers=30, steps=8), context)
        assert not first.provenance.cache_hit
        assert second.provenance.cache_hit
        assert payload_json(first) == payload_json(second)
        assert first.text == second.text

    def test_scalar_write_serves_columnar_read(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        context = QueryContext(cache=cache)
        execute(ReplayQuery(servers=30, steps=8, fleet_backend="scalar"), context)
        hit = execute(
            ReplayQuery(servers=30, steps=8, fleet_backend="columnar"), context
        )
        assert hit.provenance.cache_hit  # backends share one entry

    def test_artifact_entry_shared_with_run_all(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        study = Study()
        study.run_all(cache=cache)
        context = QueryContext(cache=cache)
        context.adopt_study(study)
        result = execute(ArtifactQuery(artifact_id="fig3"), context)
        assert result.provenance.cache_hit
        assert result.text == f"== fig3: {study.figure('fig3').title} ==" + (
            "\n" + study.figure("fig3").text
        )

    def test_cache_stats_and_clear(self, tmp_path):
        cache_dir = str(tmp_path / "store")
        context = QueryContext(cache=ArtifactCache(cache_dir))
        execute(StatsQuery(), context)
        stats = execute(CacheQuery(action="stats", cache_dir=cache_dir), context)
        assert stats.payload["entries"] == 1
        cleared = execute(
            CacheQuery(action="clear", cache_dir=cache_dir), context
        )
        assert cleared.payload["removed"] == 1


class TestStudyQuery:
    def test_study_query_uses_the_owned_corpus(self):
        study = Study()
        result = study.query(StatsQuery(metric="ep"))
        assert result.payload["count"] == len(study.corpus)
        assert result.provenance.fingerprint == study.fingerprint

    def test_study_query_overrides_request_seed(self):
        study = Study(seed=7)
        result = study.query(StatsQuery(seed=2016))
        assert result.provenance.fingerprint == study.fingerprint

    def test_study_query_rejects_non_requests(self):
        with pytest.raises(TypeError):
            Study().query("stats")

    def test_figure_goes_through_build_artifact(self):
        study = Study()
        assert study.figure("fig3").figure_id == "fig3"
        with pytest.raises(KeyError):
            study.figure("fig99")
