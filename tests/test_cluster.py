"""Tests for working regions, logical clusters, placement, multinode."""

import pytest

from repro.cluster.logical_cluster import build_logical_clusters
from repro.cluster.multinode import (
    cluster_power_curve,
    cluster_proportionality,
    independent_vs_grouped,
)
from repro.cluster.placement import (
    ep_aware_placement,
    max_throughput_under_cap,
    pack_to_full_placement,
)
from repro.cluster.regions import (
    WorkingRegion,
    above_full_load_region,
    efficiency_at,
    optimal_working_region,
    power_at,
    throughput_at,
)


@pytest.fixture(scope="module")
def modern_fleet(corpus):
    return list(corpus.by_hw_year_range(2013, 2016))


@pytest.fixture(scope="module")
def modern_server(corpus):
    """A high-EP server with an interior peak spot."""
    return max(corpus.by_hw_year(2016), key=lambda r: r.ep)


@pytest.fixture(scope="module")
def legacy_server(corpus):
    return min(corpus.by_hw_year(2008), key=lambda r: r.ep)


class TestWorkingRegion:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            WorkingRegion(low=0.8, high=0.5)

    def test_intersection(self):
        a = WorkingRegion(0.4, 0.9)
        b = WorkingRegion(0.6, 1.0)
        merged = a.intersect(b)
        assert merged.low == 0.6 and merged.high == 0.9

    def test_disjoint_intersection_raises(self):
        with pytest.raises(ValueError, match="overlap"):
            WorkingRegion(0.1, 0.3).intersect(WorkingRegion(0.5, 0.9))

    def test_contains_and_midpoint(self):
        region = WorkingRegion(0.6, 1.0)
        assert region.contains(0.7)
        assert not region.contains(0.5)
        assert region.midpoint() == pytest.approx(0.8)


class TestOptimalRegions:
    def test_modern_server_region_is_interior_band(self, modern_server):
        region = optimal_working_region(modern_server)
        assert region.low < 1.0
        assert region.contains(modern_server.primary_peak_spot)

    def test_legacy_server_region_hugs_full_load(self, legacy_server):
        region = optimal_working_region(legacy_server, threshold=0.98)
        assert region.high == pytest.approx(1.0)

    def test_lower_threshold_widens_region(self, modern_server):
        tight = optimal_working_region(modern_server, threshold=0.99)
        loose = optimal_working_region(modern_server, threshold=0.90)
        assert loose.width >= tight.width

    def test_above_full_load_region_for_high_ep(self, modern_server):
        region = above_full_load_region(modern_server)
        assert region.high == 1.0
        assert region.low < 0.7  # EP > 1 servers beat EE(100%) early

    def test_interpolators_are_consistent(self, modern_server):
        for u in (0.25, 0.55, 0.85):
            assert efficiency_at(modern_server, u) == pytest.approx(
                throughput_at(modern_server, u) / power_at(modern_server, u),
                rel=0.15,
            )

    def test_interpolation_bounds(self, modern_server):
        with pytest.raises(ValueError):
            efficiency_at(modern_server, 0.0)
        with pytest.raises(ValueError):
            power_at(modern_server, 1.5)


class TestLogicalClusters:
    def test_every_cluster_region_is_usable(self, modern_fleet):
        clusters = build_logical_clusters(modern_fleet)
        for cluster in clusters:
            assert cluster.region.width >= 0.1 - 1e-9 or cluster.size == 1

    def test_members_share_the_ep_band(self, modern_fleet):
        clusters = build_logical_clusters(modern_fleet)
        for cluster in clusters:
            low, high = cluster.ep_band
            for member in cluster.members:
                assert low - 1e-9 <= member.ep < high + 1e-9

    def test_all_servers_placed_once(self, modern_fleet):
        clusters = build_logical_clusters(modern_fleet)
        placed = [m.result_id for c in clusters for m in c.members]
        assert len(placed) == len(modern_fleet)
        assert len(set(placed)) == len(placed)

    def test_min_size_filter(self, modern_fleet):
        clusters = build_logical_clusters(modern_fleet, min_size=5)
        assert all(c.size >= 5 for c in clusters)

    def test_capacity_positive(self, modern_fleet):
        clusters = build_logical_clusters(modern_fleet, min_size=2)
        assert all(c.total_capacity_ops() > 0.0 for c in clusters)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            build_logical_clusters([])


class TestPlacement:
    def _capacity(self, fleet):
        return sum(
            level.ssj_ops
            for server in fleet
            for level in server.levels
            if level.target_load == 1.0
        )

    def test_both_policies_satisfy_demand(self, modern_fleet):
        demand = 0.5 * self._capacity(modern_fleet)
        assert pack_to_full_placement(modern_fleet, demand).satisfied()
        assert ep_aware_placement(modern_fleet, demand).satisfied()

    def test_ep_aware_saves_power_on_a_fixed_fleet(self, modern_fleet):
        """The Section V.C headline."""
        for share in (0.3, 0.5, 0.7):
            demand = share * self._capacity(modern_fleet)
            packed = pack_to_full_placement(modern_fleet, demand)
            aware = ep_aware_placement(modern_fleet, demand)
            assert aware.total_power_w < packed.total_power_w, share

    def test_power_off_ablation_narrows_the_gap(self, modern_fleet):
        """Consolidation with power-off shrinks EP-aware's advantage:
        the paper's guidance is strongest for fixed, powered racks."""
        demand = 0.3 * self._capacity(modern_fleet)

        def saving(power_off):
            packed = pack_to_full_placement(
                modern_fleet, demand, power_off_unused=power_off
            )
            aware = ep_aware_placement(
                modern_fleet, demand, power_off_unused=power_off
            )
            return 1.0 - aware.total_power_w / packed.total_power_w

        assert saving(power_off=False) > saving(power_off=True)

    def test_power_off_consolidation_converges_at_high_demand(self, modern_fleet):
        """Near fleet capacity every policy runs everything hot."""
        demand = 0.95 * self._capacity(modern_fleet)
        packed = pack_to_full_placement(modern_fleet, demand,
                                        power_off_unused=True)
        aware = ep_aware_placement(modern_fleet, demand,
                                   power_off_unused=True)
        assert aware.total_power_w == pytest.approx(
            packed.total_power_w, rel=0.05
        )

    def test_ep_aware_uses_more_servers_at_lower_utilization(self, modern_fleet):
        demand = 0.5 * self._capacity(modern_fleet)
        packed = pack_to_full_placement(modern_fleet, demand)
        aware = ep_aware_placement(modern_fleet, demand)
        assert aware.servers_used >= packed.servers_used

    def test_throughput_under_cap_favors_ep_aware(self, modern_fleet):
        capacity = self._capacity(modern_fleet)
        cap = 0.6 * pack_to_full_placement(modern_fleet, capacity).total_power_w
        packed = max_throughput_under_cap(modern_fleet, cap, "pack-to-full")
        aware = max_throughput_under_cap(modern_fleet, cap, "ep-aware")
        assert aware.placed_ops >= packed.placed_ops
        assert aware.total_power_w <= cap
        assert packed.total_power_w <= cap

    def test_zero_demand_draws_idle_power_only(self, modern_fleet):
        outcome = pack_to_full_placement(modern_fleet, 0.0)
        idle_total = sum(power_at(s, 0.0) for s in modern_fleet)
        assert outcome.total_power_w == pytest.approx(idle_total)

    def test_negative_demand_rejected(self, modern_fleet):
        with pytest.raises(ValueError):
            ep_aware_placement(modern_fleet, -1.0)

    def test_unknown_policy_rejected(self, modern_fleet):
        with pytest.raises(ValueError):
            max_throughput_under_cap(modern_fleet, 100.0, policy="magic")


class TestMultinode:
    def test_grouping_raises_proportionality(self, legacy_server):
        """Fig. 13's mechanism: the balanced group beats the node."""
        single = legacy_server.ep
        grouped = cluster_proportionality(legacy_server, nodes=8)
        assert grouped > single

    def test_more_nodes_help_more(self, legacy_server):
        values = [
            cluster_proportionality(legacy_server, nodes=n) for n in (2, 4, 8, 16)
        ]
        assert values == sorted(values)

    def test_grouped_never_worse_than_independent(self, legacy_server):
        for utilization in (0.1, 0.3, 0.5, 0.8):
            independent, grouped = independent_vs_grouped(
                legacy_server, nodes=8, utilization=utilization
            )
            assert grouped <= independent + 1e-9

    def test_power_off_matters(self, legacy_server):
        with_off = cluster_proportionality(legacy_server, 8, can_power_off=True)
        without = cluster_proportionality(legacy_server, 8, can_power_off=False)
        assert with_off > without

    def test_curve_endpoints(self, legacy_server):
        grid, powers = cluster_power_curve(legacy_server, 4)
        loads, node_powers = legacy_server.curve()
        assert powers[-1] == pytest.approx(4 * node_powers[-1], rel=1e-6)

    def test_invalid_nodes_rejected(self, legacy_server):
        with pytest.raises(ValueError):
            cluster_power_curve(legacy_server, 0)
