"""Tests for the corpus lint."""

import pytest

from repro.dataset.corpus import Corpus
from repro.dataset.schema import LoadLevel, SpecPowerResult
from repro.dataset.validation import (
    errors_only,
    validate_corpus,
    validate_result,
)
from repro.power.microarch import Codename


def _result(**overrides):
    loads = [round(0.1 * i, 1) for i in range(1, 11)]
    levels = overrides.pop(
        "levels",
        [
            LoadLevel(
                target_load=u,
                ssj_ops=1000.0 * u,
                average_power_w=100.0 * (0.3 + 0.7 * u),
            )
            for u in loads
        ],
    )
    defaults = dict(
        result_id="r1",
        vendor="Acme",
        model="AS-1",
        form_factor="2U",
        hw_year=2014,
        published_year=2014,
        codename=Codename.HASWELL,
        nodes=1,
        chips_per_node=2,
        cores_per_chip=8,
        memory_gb=32.0,
        levels=levels,
        active_idle_power_w=30.0,
    )
    defaults.update(overrides)
    return SpecPowerResult(**defaults)


class TestCleanData:
    def test_clean_record_has_no_findings(self):
        assert validate_result(_result()) == []

    def test_synthetic_corpus_has_no_errors(self, corpus):
        findings = validate_corpus(corpus)
        assert errors_only(findings) == []

    def test_synthetic_corpus_warnings_are_scarce(self, corpus):
        findings = validate_corpus(corpus)
        assert len(findings) < 0.05 * len(corpus)


class TestErrorDetection:
    def test_non_monotone_power_flagged(self):
        result = _result()
        levels = list(result.levels)
        broken = LoadLevel(
            target_load=levels[5].target_load,
            ssj_ops=levels[5].ssj_ops,
            average_power_w=levels[0].average_power_w * 0.5,
        )
        levels[5] = broken
        result = _result(levels=levels)
        messages = [f.message for f in validate_result(result)]
        assert any("power decreases" in m for m in messages)

    def test_throughput_not_tracking_load_flagged(self):
        result = _result()
        levels = list(result.levels)
        levels[2] = LoadLevel(
            target_load=levels[2].target_load,
            ssj_ops=levels[2].ssj_ops * 3.0,
            average_power_w=levels[2].average_power_w,
        )
        result = _result(levels=levels)
        findings = validate_result(result)
        assert any("throughput" in f.message for f in errors_only(findings))

    def test_non_standard_loads_flagged(self):
        levels = [
            LoadLevel(target_load=u, ssj_ops=100.0 * u, average_power_w=50.0 + u)
            for u in (0.25, 0.5, 0.75, 1.0)
        ]
        findings = validate_result(_result(levels=levels))
        assert any("non-standard target loads" in f.message for f in findings)


class TestWarnings:
    def test_extreme_idle_warned(self):
        levels = [
            LoadLevel(
                target_load=u, ssj_ops=1000.0 * u, average_power_w=98.0 + 2.0 * u
            )
            for u in [round(0.1 * i, 1) for i in range(1, 11)]
        ]
        result = _result(levels=levels, active_idle_power_w=98.0)
        findings = validate_result(result)
        assert any("idle power" in f.message for f in findings)
        assert errors_only(findings) == []

    def test_implausible_lag_warned(self):
        result = _result(published_year=2024)
        findings = validate_result(result)
        assert any("publication lag" in f.message for f in findings)

    def test_huge_memory_per_core_warned(self):
        result = _result(memory_gb=2048.0)
        findings = validate_result(result)
        assert any("GB/core" in f.message for f in findings)

    def test_findings_render(self):
        result = _result(published_year=2024)
        text = str(validate_result(result)[0])
        assert "[warning]" in text and "r1" in text
