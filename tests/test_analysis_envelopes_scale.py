"""Tests for the envelope charts (Figs. 9-12) and economies of scale
(Figs. 13-15)."""

import numpy as np
import pytest

from repro.analysis.envelopes import (
    curve_envelope,
    intersection_ordering,
    selected_curves,
)
from repro.analysis.scale import chip_scaling, node_scaling, two_chip_comparison
from repro.metrics.curves import ee_relative_curve


class TestPencilHead:
    def test_every_curve_inside_the_envelope(self, corpus):
        env = curve_envelope(corpus, "power")
        for result in corpus:
            loads, powers = result.curve()
            peak = powers[-1]
            assert env.contains([p / peak for p in powers])

    def test_envelope_edges_are_extreme_ep_servers(self, corpus):
        env = curve_envelope(corpus, "power")
        upper_server = corpus.get(env.upper_id)
        lower_server = corpus.get(env.lower_id)
        # Upper power envelope = least proportional; lower = most.
        assert upper_server.ep < 0.35
        assert lower_server.ep > 0.95

    def test_envelope_endpoints_pinched_at_full_load(self, corpus):
        env = curve_envelope(corpus, "power")
        assert env.lower[-1] == pytest.approx(1.0)
        assert env.upper[-1] == pytest.approx(1.0)


class TestAlmond:
    def test_every_ee_curve_inside(self, corpus):
        env = curve_envelope(corpus, "ee")
        for result in corpus:
            loads, powers = result.curve()
            assert env.contains(list(ee_relative_curve(loads, powers)))

    def test_upper_ee_envelope_exceeds_one(self, corpus):
        env = curve_envelope(corpus, "ee")
        assert max(env.upper) > 1.0


class TestSelectedCurves:
    def test_default_selection_returns_eleven(self, corpus):
        curves = selected_curves(corpus)
        assert len(curves) == 11

    def test_selection_hits_the_paper_eps(self, corpus):
        curves = selected_curves(corpus)
        eps = sorted(round(c.ep, 2) for c in curves)
        assert eps[0] == pytest.approx(0.18, abs=0.01)
        assert eps[-1] == pytest.approx(1.05, abs=0.01)
        assert any(abs(ep - 0.86) < 0.015 for ep in eps)

    def test_unique_servers_selected(self, corpus):
        curves = selected_curves(corpus)
        ids = [c.result_id for c in curves]
        assert len(set(ids)) == len(ids)

    def test_intersection_ordering_is_monotone(self, corpus):
        """Higher EP => first ideal-curve crossing farther from 100%."""
        pairs = intersection_ordering(selected_curves(corpus))
        assert len(pairs) >= 4
        eps = [ep for ep, _ in pairs]
        crossings = [x for _, x in pairs]
        # Expect a strong negative rank relationship.
        from repro.metrics.correlation import spearman

        assert spearman(eps, crossings) < -0.6

    def test_missing_year_rejected(self, corpus):
        with pytest.raises(ValueError):
            selected_curves(corpus, targets={"2003": 0.5})


class TestNodeScaling:
    def test_median_ep_monotone_in_nodes(self, corpus):
        stats = node_scaling(corpus)
        medians = [s.ep.median for s in stats]
        assert medians == sorted(medians)

    def test_average_ep_dips_at_eight_nodes(self, corpus):
        stats = {s.key: s for s in node_scaling(corpus)}
        assert stats[8].ep.mean < stats[4].ep.mean
        assert stats[16].ep.mean > stats[8].ep.mean

    def test_average_ee_improves_with_nodes(self, corpus):
        stats = {s.key: s for s in node_scaling(corpus)}
        assert stats[2].score.mean > stats[1].score.mean
        assert stats[16].score.mean > stats[1].score.mean

    def test_min_count_filter(self, corpus):
        stats = node_scaling(corpus, min_count=10)
        assert all(s.count >= 10 for s in stats)


class TestChipScaling:
    def test_two_chips_lead_everything_but_median_ep(self, corpus):
        stats = {s.key: s for s in chip_scaling(corpus)}
        assert stats[2].ep.mean == max(s.ep.mean for s in stats.values())
        assert stats[2].score.mean == max(s.score.mean for s in stats.values())
        assert stats[1].ep.median > stats[2].ep.median  # the exception

    def test_monotone_decline_beyond_two_chips(self, corpus):
        stats = {s.key: s for s in chip_scaling(corpus)}
        assert stats[2].ep.mean > stats[4].ep.mean > stats[8].ep.mean
        assert stats[2].score.mean > stats[4].score.mean > stats[8].score.mean


class TestTwoChipComparison:
    def test_gains_match_fig15_direction(self, corpus):
        comparison = two_chip_comparison(corpus)
        assert comparison.avg_ep_gain == pytest.approx(0.0294, abs=0.025)
        assert comparison.avg_ee_gain == pytest.approx(0.0413, abs=0.04)
        assert comparison.median_ee_gain > 0.0

    def test_weighting_covers_most_years(self, corpus):
        comparison = two_chip_comparison(corpus)
        assert comparison.years_compared >= 9
