"""Tests for the EXPERIMENTS.md report generator and the targets
validator's failure paths."""

import pytest

from repro.core.pipeline import build_experiments_report, main
from repro.dataset import calibration_targets as targets


class TestExperimentsReport:
    @pytest.fixture(scope="class")
    def report(self, study):
        return build_experiments_report(study)

    def test_contains_the_scalar_table(self, report):
        assert "| artifact | claim | paper | measured |" in report
        assert "| eq2 | corr(EP, idle%) | -0.92 |" in report

    def test_every_artifact_indexed(self, report):
        from repro.core.registry import REGISTRY

        for figure_id in REGISTRY:
            assert f"| {figure_id} |" in report

    def test_every_claim_has_a_measured_value(self, report):
        rows = [
            line
            for line in report.splitlines()
            if line.startswith("| fig") or line.startswith("| eq2")
        ]
        for row in rows:
            cells = [cell.strip() for cell in row.strip("|").split("|")]
            assert len(cells) >= 3
            assert cells[-1] != ""

    def test_main_writes_the_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main([str(target)]) == 0
        assert target.read_text().startswith("# EXPERIMENTS")


class TestTargetsValidator:
    def test_valid_tables_pass(self):
        targets.validate_targets()

    def test_detects_year_count_drift(self, monkeypatch):
        broken = dict(targets.YEAR_COUNTS)
        broken[2012] += 1
        monkeypatch.setattr(targets, "YEAR_COUNTS", broken)
        with pytest.raises(AssertionError, match="477"):
            targets.validate_targets()

    def test_detects_codename_allocation_drift(self, monkeypatch):
        from repro.power.microarch import Codename

        broken = {
            year: dict(allocation)
            for year, allocation in targets.YEAR_CODENAME_COUNTS.items()
        }
        broken[2012][Codename.SANDY_BRIDGE_EP] -= 1
        monkeypatch.setattr(targets, "YEAR_CODENAME_COUNTS", broken)
        with pytest.raises(AssertionError, match="codename allocation"):
            targets.validate_targets()

    def test_detects_spot_share_drift(self, monkeypatch):
        broken = {
            year: dict(spots)
            for year, spots in targets.PEAK_SPOT_YEAR_COUNTS.items()
        }
        broken[2012][0.7] -= 20
        broken[2012][1.0] += 20
        monkeypatch.setattr(targets, "PEAK_SPOT_YEAR_COUNTS", broken)
        with pytest.raises(AssertionError, match="share"):
            targets.validate_targets()

    def test_detects_lag_plan_drift(self, monkeypatch):
        broken = dict(targets.PUBLICATION_LAG_COUNTS)
        broken[1] += 1
        monkeypatch.setattr(targets, "PUBLICATION_LAG_COUNTS", broken)
        with pytest.raises(AssertionError, match="74"):
            targets.validate_targets()
