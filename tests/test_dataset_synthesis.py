"""Calibration tests: the synthetic corpus must carry the paper's shape.

Every test here checks a number or a qualitative relationship the paper
states, against the default-seed corpus.  Tolerances are deliberately
explicit: exact where the generator pins values (counts, pinned
exemplars), banded where the paper's number is a statistic the
generator reproduces through noise.
"""

import numpy as np
import pytest

from repro.dataset import calibration_targets as targets
from repro.dataset.synthesis import generate_corpus
from repro.power.microarch import Codename, Family


class TestPopulationStructure:
    def test_477_results(self, corpus):
        assert len(corpus) == 477

    def test_year_counts_match_plan(self, corpus):
        assert corpus.count_by_hw_year() == targets.YEAR_COUNTS

    def test_2012_share_is_27_percent(self, corpus):
        share = len(corpus.by_hw_year(2012)) / len(corpus)
        assert share == pytest.approx(0.274, abs=0.005)

    def test_codename_allocation(self, corpus):
        for year, allocation in targets.YEAR_CODENAME_COUNTS.items():
            observed = corpus.by_hw_year(year).count_by_codename()
            assert observed == allocation

    def test_family_totals(self, corpus):
        counts = corpus.count_by_family()
        assert counts[Family.NETBURST] == 3
        assert counts[Family.NEHALEM] == 152
        assert counts[Family.SANDY_BRIDGE] == 137
        assert counts[Family.SKYLAKE] == 3

    def test_single_node_chip_histogram(self, corpus):
        single = corpus.single_node()
        observed = {
            chips: len(single.by_chips(chips)) for chips in single.chip_counts()
        }
        assert observed == targets.SINGLE_NODE_CHIP_COUNTS

    def test_multi_node_histogram(self, corpus):
        multi = corpus.multi_node()
        observed = {n: len(multi.by_nodes(n)) for n in multi.node_counts()}
        assert observed == targets.MULTI_NODE_COUNTS

    def test_memory_per_core_table1(self, corpus):
        for ratio, count in targets.MEMORY_PER_CORE_COUNTS.items():
            assert len(corpus.by_memory_per_core(ratio)) == count

    def test_determinism(self):
        a = generate_corpus(seed=123)
        b = generate_corpus(seed=123)
        assert [r.ep for r in a] == [r.ep for r in b]
        assert [r.overall_score for r in a] == [r.overall_score for r in b]

    def test_different_seeds_differ(self):
        a = generate_corpus(seed=123)
        b = generate_corpus(seed=124)
        assert [r.ep for r in a] != [r.ep for r in b]


class TestEpDistribution:
    def test_global_extremes(self, corpus):
        eps = np.array(corpus.eps())
        assert eps.min() == pytest.approx(0.18, abs=0.01)
        assert eps.max() == pytest.approx(1.05, abs=0.01)

    def test_extremes_in_the_right_years(self, corpus):
        lowest = min(corpus, key=lambda r: r.ep)
        highest = max(corpus, key=lambda r: r.ep)
        assert lowest.hw_year == 2008
        assert highest.hw_year == 2012

    def test_only_two_servers_reach_ideal(self, corpus):
        above = [r for r in corpus if r.ep >= 1.0]
        assert len(above) == 2  # 99.58% below 1.0

    def test_cdf_landmarks(self, corpus):
        eps = np.array(corpus.eps())
        assert ((eps >= 0.6) & (eps < 0.7)).mean() == pytest.approx(0.2521, abs=0.05)
        assert ((eps >= 0.8) & (eps < 0.9)).mean() == pytest.approx(0.1744, abs=0.05)

    def test_2016_minimum_near_073(self, corpus):
        eps = np.array(corpus.by_hw_year(2016).eps())
        assert eps.min() == pytest.approx(0.73, abs=0.03)


class TestYearlyTrend:
    def test_avg_anchors(self, corpus):
        for year, target in targets.YEAR_EP_AVG_TARGETS.items():
            observed = float(np.mean(corpus.by_hw_year(year).eps()))
            assert observed == pytest.approx(target, abs=0.035), year

    def test_median_anchors(self, corpus):
        for year, target in targets.YEAR_EP_MEDIAN_TARGETS.items():
            observed = float(np.median(corpus.by_hw_year(year).eps()))
            assert observed == pytest.approx(target, abs=0.055), year

    def test_ep_jumps_at_the_tocks(self, corpus):
        avg = {
            year: float(np.mean(corpus.by_hw_year(year).eps()))
            for year in (2008, 2009, 2011, 2012)
        }
        assert avg[2009] / avg[2008] - 1 == pytest.approx(0.4865, abs=0.12)
        assert avg[2012] / avg[2011] - 1 == pytest.approx(0.2424, abs=0.07)

    def test_2013_2014_dip_with_median_recovery(self, corpus):
        avg = {
            year: float(np.mean(corpus.by_hw_year(year).eps()))
            for year in (2012, 2013, 2014)
        }
        med = {
            year: float(np.median(corpus.by_hw_year(year).eps()))
            for year in (2013, 2014)
        }
        assert avg[2013] < avg[2012]
        assert avg[2014] < avg[2012]
        assert med[2014] > med[2013]  # "the median EP in 2014 still increases"

    def test_2004_higher_than_2005(self, corpus):
        avg_2004 = float(np.mean(corpus.by_hw_year(2004).eps()))
        avg_2005 = float(np.mean(corpus.by_hw_year(2005).eps()))
        assert avg_2004 > avg_2005

    def test_ee_average_monotone(self, corpus):
        years = corpus.hw_years()
        averages = [float(np.mean(corpus.by_hw_year(y).scores())) for y in years]
        for a, b in zip(averages, averages[1:]):
            assert b > a * 0.97

    def test_ee_maximum_monotone(self, corpus):
        years = corpus.hw_years()
        maxima = [float(np.max(corpus.by_hw_year(y).scores())) for y in years]
        for a, b in zip(maxima, maxima[1:]):
            assert b >= a

    def test_2014_minimum_is_the_tower_outlier(self, corpus):
        sub = corpus.by_hw_year(2014)
        outlier = min(sub, key=lambda r: r.overall_score)
        assert outlier.overall_score == pytest.approx(1469.0, rel=0.01)
        assert outlier.form_factor == "Tower"
        assert outlier.ep == pytest.approx(0.32, abs=0.01)
        assert outlier.chips_per_node == 1 and outlier.cores_per_chip == 4


class TestCodenameCalibration:
    @pytest.mark.parametrize(
        "codename",
        [c for c in Codename if c is not Codename.UNKNOWN],
    )
    def test_codename_means_near_fig7(self, corpus, codename):
        from repro.power.microarch import CATALOG

        sub = corpus.by_codename(codename)
        if len(sub) < 5:
            pytest.skip("too few members for a stable mean")
        observed = float(np.mean(sub.eps()))
        tolerance = 0.05 if len(sub) >= 20 else 0.08
        assert observed == pytest.approx(CATALOG[codename].ep_mean, abs=tolerance)

    def test_sandy_bridge_en_is_the_best_cohort(self, corpus):
        means = {
            codename: float(np.mean(corpus.by_codename(codename).eps()))
            for codename in corpus.codenames()
            if len(corpus.by_codename(codename)) >= 10
        }
        assert max(means, key=means.get) is Codename.SANDY_BRIDGE_EN


class TestPeakSpots:
    def test_total_spots_478(self, corpus):
        assert sum(len(r.peak_ee_spots) for r in corpus) == 478

    def test_exactly_one_tie_server(self, corpus):
        ties = [r for r in corpus if len(r.peak_ee_spots) > 1]
        assert len(ties) == 1
        assert ties[0].peak_ee_spots == [0.8, 0.9]
        assert ties[0].hw_year == 2011

    def test_global_shares(self, corpus):
        counts = {}
        for result in corpus:
            for spot in result.peak_ee_spots:
                counts[spot] = counts.get(spot, 0) + 1
        n = len(corpus)
        assert counts[1.0] / n == pytest.approx(0.6925, abs=0.015)
        assert counts[0.7] / n == pytest.approx(0.1381, abs=0.01)
        assert counts[0.8] / n == pytest.approx(0.1172, abs=0.01)
        assert counts[0.9] / n == pytest.approx(0.0335, abs=0.01)
        assert counts[0.6] / n == pytest.approx(0.0188, abs=0.005)

    def test_all_full_load_before_2010(self, corpus):
        early = corpus.by_hw_year_range(2004, 2009)
        assert all(r.primary_peak_spot == 1.0 for r in early)

    def test_2016_breakdown(self, corpus):
        sub = corpus.by_hw_year(2016)
        counts = {}
        for result in sub:
            counts[result.primary_peak_spot] = counts.get(
                result.primary_peak_spot, 0
            ) + 1
        assert counts == {1.0: 3, 0.8: 10, 0.7: 5}

    def test_interval_shift(self, corpus):
        early = corpus.by_hw_year_range(2004, 2012)
        late = corpus.by_hw_year_range(2013, 2016)
        early_full = sum(1 for r in early if r.primary_peak_spot == 1.0) / len(early)
        late_full = sum(1 for r in late if r.primary_peak_spot == 1.0) / len(late)
        assert early_full == pytest.approx(0.7571, abs=0.02)
        assert late_full == pytest.approx(0.2321, abs=0.02)


class TestCorrelations:
    def test_ep_idle_correlation(self, corpus):
        from repro.metrics.correlation import pearson

        value = pearson(corpus.eps(), corpus.idle_fractions())
        assert value == pytest.approx(-0.92, abs=0.04)

    def test_ep_score_correlation(self, corpus):
        from repro.metrics.correlation import pearson

        value = pearson(corpus.eps(), corpus.scores())
        assert value == pytest.approx(0.741, abs=0.08)

    def test_eq2_regression(self, corpus):
        from repro.metrics.regression import exponential_fit

        fit = exponential_fit(corpus.idle_fractions(), corpus.eps())
        assert fit.amplitude == pytest.approx(1.2969, abs=0.12)
        assert fit.rate == pytest.approx(-2.06, abs=0.35)
        assert fit.r_squared == pytest.approx(0.892, abs=0.06)


class TestPinnedExemplars:
    def test_fig1_exemplar(self, corpus):
        exemplar = max(corpus.by_hw_year(2016), key=lambda r: r.ep)
        assert exemplar.ep == pytest.approx(1.02, abs=0.01)
        assert exemplar.overall_score == pytest.approx(12212.0, rel=0.01)

    def test_double_crossing_2014_server(self, corpus):
        candidates = [
            r for r in corpus.by_hw_year(2014) if abs(r.ep - 0.86) < 0.01
        ]
        assert candidates
        server = candidates[0]
        crossings = server.ideal_intersections()
        assert len(crossings) == 2
        assert 0.5 < crossings[0] < 0.6
        assert 0.7 < crossings[1] < 0.8
        assert server.form_factor == "1U"

    def test_2016_and_2011_same_ep_different_shapes(self, corpus):
        """Two EP~0.75 servers: one crosses the ideal curve, one does not."""
        year_2016 = min(
            corpus.by_hw_year(2016), key=lambda r: abs(r.ep - 0.75)
        )
        year_2011 = min(
            corpus.by_hw_year(2011), key=lambda r: abs(r.ep - 0.75)
        )
        assert year_2016.ep == pytest.approx(0.75, abs=0.01)
        assert year_2011.ep == pytest.approx(0.75, abs=0.01)
        assert not year_2016.ideal_intersections()
        assert year_2011.ideal_intersections()

    def test_high_ep_servers_cross_thresholds_early(self, corpus):
        """Fig. 12: EP > 1 implies 0.8x EE before 30%, 1.0x before 40%."""
        for server in corpus:
            if server.ep > 1.0:
                assert server.ee_crossing(0.8) < 0.30
                assert server.ee_crossing(1.0) < 0.40


class TestPublicationReorganization:
    def test_74_mismatched_results(self, corpus):
        mismatched = [r for r in corpus if r.published_year != r.hw_year]
        assert len(mismatched) == 74

    def test_lag_plan(self, corpus):
        lags = {}
        for r in corpus:
            if r.published_year != r.hw_year:
                lags[r.publication_lag_years] = lags.get(r.publication_lag_years, 0) + 1
        assert lags[-1] == 1  # one result published before availability
        assert max(lags) <= 6
        assert sum(lags.values()) == 74

    def test_no_published_result_before_2007(self, corpus):
        assert min(corpus.published_years()) >= 2007

    def test_pre2007_hardware_all_reorganized(self, corpus):
        for result in corpus.by_hw_year_range(2004, 2006):
            assert result.published_year > result.hw_year


class TestStructuralEffectsSwitch:
    def test_ablation_removes_config_adjustments(self):
        ablated = generate_corpus(seed=2016, structural_effects=False)
        single = ablated.single_node()
        avg = {
            chips: float(np.mean(single.by_chips(chips).eps()))
            for chips in single.chip_counts()
        }
        assert avg[1] > avg[2]

    def test_ablation_keeps_population_structure(self):
        ablated = generate_corpus(seed=2016, structural_effects=False)
        assert len(ablated) == 477
        assert ablated.count_by_hw_year() == targets.YEAR_COUNTS

    def test_ablation_keeps_year_calibration(self):
        ablated = generate_corpus(seed=2016, structural_effects=False)
        observed = float(np.mean(ablated.by_hw_year(2012).eps()))
        assert observed == pytest.approx(0.82, abs=0.05)
