"""Tests for job-granular scheduling and the FDR text parser."""

import numpy as np
import pytest

from repro.cluster.jobs import (
    FirstFitDecreasing,
    Job,
    PeakSpotAware,
    compare_schedulers,
    synthesize_jobs,
)
from repro.ssj.fdr import FdrParseError, parse_fdr_text
from repro.ssj.report import BenchmarkReport, LevelMeasurement


@pytest.fixture(scope="module")
def fleet(corpus):
    return list(corpus.by_hw_year_range(2014, 2016))


@pytest.fixture(scope="module")
def jobs(fleet):
    return synthesize_jobs(fleet, 0.5, rng=np.random.default_rng(4))


class TestJobSynthesis:
    def test_total_demand_near_target(self, fleet, jobs):
        from repro.cluster.regions import throughput_at

        capacity = sum(throughput_at(s, 1.0) for s in fleet)
        total = sum(job.demand_ops for job in jobs)
        assert total == pytest.approx(0.5 * capacity, rel=0.1)

    def test_heavy_tail(self, jobs):
        sizes = sorted(job.demand_ops for job in jobs)
        assert sizes[-1] > 5 * np.median(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            Job(job_id="x", demand_ops=0.0)
        with pytest.raises(ValueError):
            synthesize_jobs([], 1.5)

    def test_randomness_source_is_required(self, fleet):
        with pytest.raises(ValueError, match="seed= or rng="):
            synthesize_jobs(fleet, 0.5)
        with pytest.raises(ValueError, match="seed= or rng="):
            synthesize_jobs(fleet, 0.5, seed=4, rng=np.random.default_rng(4))

    def test_seed_matches_equivalent_rng(self, fleet, jobs):
        seeded = synthesize_jobs(fleet, 0.5, seed=4)
        assert [job.demand_ops for job in seeded] == [
            job.demand_ops for job in jobs
        ]


class TestSchedulers:
    def test_both_place_everything_at_half_load(self, fleet, jobs):
        schedules = compare_schedulers(fleet, jobs)
        for schedule in schedules.values():
            assert not schedule.unplaced
            assert schedule.placed_ops == pytest.approx(
                sum(job.demand_ops for job in jobs)
            )

    def test_spot_aware_saves_power(self, fleet, jobs):
        schedules = compare_schedulers(fleet, jobs)
        assert (
            schedules["peak-spot-aware"].total_power_w
            < schedules["first-fit-decreasing"].total_power_w
        )

    def test_spot_aware_respects_the_caps_when_possible(self, fleet, jobs):
        schedule = PeakSpotAware().schedule(fleet, jobs)
        by_id = {server.result_id: server for server in fleet}
        over_cap = 0
        for server_id, _load in schedule.loads_ops.items():
            server = by_id[server_id]
            if schedule.utilization_of(server) > server.primary_peak_spot + 0.02:
                over_cap += 1
        # At half load nothing needs to spill past its spot.
        assert over_cap == 0

    def test_ffd_concentrates_load(self, fleet, jobs):
        schedules = compare_schedulers(fleet, jobs)
        assert (
            schedules["first-fit-decreasing"].servers_loaded
            <= schedules["peak-spot-aware"].servers_loaded
        )

    def test_overload_reports_unplaced(self, fleet):
        oversize = [Job(job_id="huge", demand_ops=1e15)]
        schedule = FirstFitDecreasing().schedule(fleet, oversize)
        assert schedule.unplaced == ["huge"]

    def test_assignments_reference_real_servers(self, fleet, jobs):
        schedule = PeakSpotAware().schedule(fleet, jobs)
        ids = {server.result_id for server in fleet}
        assert set(schedule.assignments.values()) <= ids


class TestFdrParser:
    def _report(self):
        levels = [
            LevelMeasurement(
                target_load=round(0.1 * i, 1),
                throughput_ops_per_s=1000.0 * 0.1 * i,
                average_power_w=100.0 * (0.3 + 0.07 * i),
                utilization=round(0.1 * i, 1),
            )
            for i in range(1, 11)
        ]
        return BenchmarkReport(
            calibrated_max_ops_per_s=1000.0,
            levels=levels,
            active_idle_power_w=30.0,
        )

    def test_roundtrip_scores_match(self):
        original = self._report()
        parsed = parse_fdr_text(original.to_text())
        assert parsed.overall_score() == pytest.approx(
            original.overall_score(), rel=0.01
        )
        assert parsed.energy_proportionality() == pytest.approx(
            original.energy_proportionality(), abs=0.01
        )

    def test_roundtrip_level_count(self):
        parsed = parse_fdr_text(self._report().to_text())
        assert len(parsed.levels) == 10
        assert parsed.active_idle_power_w == pytest.approx(30.0, rel=0.01)

    def test_garbage_rejected(self):
        with pytest.raises(FdrParseError, match="no measured"):
            parse_fdr_text("hello world")

    def test_missing_idle_rejected(self):
        text = "\n".join(
            line
            for line in self._report().to_text().splitlines()
            if "idle" not in line
        )
        with pytest.raises(FdrParseError, match="idle"):
            parse_fdr_text(text)

    def test_parser_tolerates_extra_noise(self):
        text = "PREAMBLE\n" + self._report().to_text() + "\nfooter: ok\n"
        parsed = parse_fdr_text(text)
        assert len(parsed.levels) == 10
