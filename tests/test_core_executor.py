"""Tests for the parallel artifact execution engine."""

import pytest

from repro.core.executor import (
    ArtifactExecutor,
    ArtifactMetric,
    RunReport,
    default_jobs,
)
from repro.core.registry import FIGURE_IDS, REGISTRY
from repro.core.study import Study


@pytest.fixture(scope="module")
def serial_results(corpus):
    study = Study(corpus=corpus)
    return ArtifactExecutor(study, jobs=1).run()


@pytest.fixture(scope="module")
def parallel_results(corpus):
    study = Study(corpus=corpus)
    return ArtifactExecutor(study, jobs=4).run()


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("figure_id", FIGURE_IDS)
    def test_series_identical(
        self, serial_results, parallel_results, series_equal, figure_id
    ):
        assert series_equal(
            serial_results[figure_id].series,
            parallel_results[figure_id].series,
        )

    @pytest.mark.parametrize("figure_id", FIGURE_IDS)
    def test_text_identical(self, serial_results, parallel_results, figure_id):
        assert (
            serial_results[figure_id].text == parallel_results[figure_id].text
        )

    def test_same_paper_order(self, serial_results, parallel_results):
        assert list(serial_results) == list(parallel_results) == list(FIGURE_IDS)


class TestScheduling:
    def test_shared_sweeps_computed_once(self, corpus, monkeypatch):
        import repro.core.study as study_module

        calls = []
        real = study_module.run_sweep

        def counting(server):
            calls.append(server.number)
            return real(server)

        monkeypatch.setattr(study_module, "run_sweep", counting)
        study = Study(corpus=corpus)
        ArtifactExecutor(study, jobs=6).run(
            ["fig18", "fig19", "fig20", "fig21"]
        )
        # fig20 and fig21 share sweep 4; each sweep resolves exactly once.
        assert sorted(calls) == [1, 2, 4]

    def test_subset_run_only_builds_requested(self, corpus):
        study = Study(corpus=corpus)
        report = ArtifactExecutor(study, jobs=2).run(["fig3", "wong"])
        assert list(report) == ["fig3", "wong"]

    def test_unknown_artifact_rejected(self, corpus):
        study = Study(corpus=corpus)
        with pytest.raises(KeyError, match="fig99"):
            ArtifactExecutor(study).run(["fig99"])

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestRunReport:
    def test_mapping_protocol(self, serial_results):
        assert isinstance(serial_results, RunReport)
        assert len(serial_results) == len(FIGURE_IDS)
        assert serial_results["fig1"].figure_id == "fig1"
        assert set(serial_results.keys()) == set(FIGURE_IDS)

    def test_metrics_cover_every_artifact(self, parallel_results):
        assert set(parallel_results.metrics) == set(FIGURE_IDS)
        for metric in parallel_results.metrics.values():
            assert isinstance(metric, ArtifactMetric)
            assert metric.seconds >= 0.0
            assert metric.cache_hit is False
            assert metric.source == "built"

    def test_no_cache_means_no_hits(self, parallel_results):
        assert parallel_results.cache_hits == 0
        assert parallel_results.built == len(FIGURE_IDS)
        assert parallel_results.cache_dir is None

    def test_render_mentions_every_artifact(self, parallel_results):
        rendered = parallel_results.render()
        for figure_id in FIGURE_IDS:
            assert figure_id in rendered
        assert "jobs=4" in rendered
        assert "shared resources" in rendered


class TestStudyRunAllIntegration:
    def test_run_all_report_flag(self, study):
        report = study.run_all(jobs=2, report=True)
        assert isinstance(report, RunReport)
        assert set(report) == set(REGISTRY)

    def test_run_all_plain_dict_by_default(self, study):
        results = study.run_all()
        assert isinstance(results, dict)
        assert not isinstance(results, RunReport)
        assert set(results) == set(REGISTRY)


class TestCacheFlagNormalization:
    """run_all(cache=...) accepts bool | ArtifactCache | None."""

    def test_true_means_default_store(self, corpus):
        from repro.core.cache import DEFAULT_CACHE_DIR, ArtifactCache

        executor = ArtifactExecutor(Study(corpus=corpus), cache=True)
        assert isinstance(executor.cache, ArtifactCache)
        assert str(executor.cache.root) == DEFAULT_CACHE_DIR

    def test_false_means_no_cache(self, corpus):
        assert ArtifactExecutor(Study(corpus=corpus), cache=False).cache is None

    def test_run_all_accepts_bools_end_to_end(
        self, study, tmp_path, monkeypatch
    ):
        # cache=True writes to the default relative store; chdir keeps it
        # inside the test's tmp dir.  This used to crash with
        # AttributeError: 'bool' object has no attribute 'get'.
        monkeypatch.chdir(tmp_path)
        report = study.run_all(jobs=2, cache=True, report=True)
        assert (tmp_path / ".repro_cache").is_dir()
        assert set(report) == set(REGISTRY)
        plain = study.run_all(jobs=2, cache=False)
        assert set(plain) == set(REGISTRY)
