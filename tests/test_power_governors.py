"""Unit tests for the frequency governors."""

import pytest

from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.governors import (
    FixedFrequencyGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)

CPU = CpuPowerModel(
    tdp_w=90.0,
    cores=8,
    operating_points=default_voltage_curve([1.2, 1.5, 1.8, 2.1, 2.4]),
)


class TestStaticGovernors:
    def test_performance_always_max(self):
        governor = PerformanceGovernor()
        for load in (0.0, 0.5, 1.0):
            assert governor.select_frequency(CPU, load) == pytest.approx(2.4)

    def test_powersave_always_min(self):
        governor = PowersaveGovernor()
        for load in (0.0, 0.5, 1.0):
            assert governor.select_frequency(CPU, load) == pytest.approx(1.2)

    def test_fixed_snaps_to_available_pstate(self):
        governor = FixedFrequencyGovernor(frequency_ghz=2.0)
        assert governor.select_frequency(CPU, 0.5) == pytest.approx(2.1)

    def test_fixed_name_mentions_frequency(self):
        assert "1.8" in FixedFrequencyGovernor(frequency_ghz=1.8).name

    def test_load_bounds_enforced(self):
        with pytest.raises(ValueError):
            PerformanceGovernor().select_frequency(CPU, 1.5)


class TestOndemand:
    def test_jumps_to_max_above_threshold(self):
        governor = OndemandGovernor(up_threshold=0.8)
        assert governor.select_frequency(CPU, 0.85) == pytest.approx(2.4)
        assert governor.select_frequency(CPU, 1.0) == pytest.approx(2.4)

    def test_scales_down_proportionally_below_threshold(self):
        governor = OndemandGovernor(up_threshold=0.8)
        low = governor.select_frequency(CPU, 0.1)
        mid = governor.select_frequency(CPU, 0.5)
        assert low <= mid <= 2.4
        assert low == pytest.approx(1.2)

    def test_chosen_frequency_keeps_projected_load_under_threshold(self):
        governor = OndemandGovernor(up_threshold=0.8)
        for load in (0.1, 0.3, 0.5, 0.7):
            frequency = governor.select_frequency(CPU, load)
            projected = load * 2.4 / frequency
            assert projected <= 0.8 + 1e-9

    def test_idle_selects_minimum(self):
        governor = OndemandGovernor()
        assert governor.select_frequency(CPU, 0.0) == pytest.approx(1.2)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=1.5)
