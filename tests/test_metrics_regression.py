"""Unit tests for the regression fits behind Eq. 2."""

import numpy as np
import pytest

from repro.metrics.regression import exponential_fit, linear_fit, r_squared


class TestLinearFit:
    def test_recovers_exact_line(self):
        x = np.linspace(0, 10, 20)
        fit = linear_fit(x, 3.0 * x - 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_recovered_approximately(self):
        rng = np.random.default_rng(3)
        x = np.linspace(0, 10, 500)
        y = 1.5 * x + 4.0 + rng.normal(0, 0.5, size=500)
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(1.5, abs=0.05)
        assert fit.intercept == pytest.approx(4.0, abs=0.2)
        assert fit.r_squared > 0.95

    def test_predict_matches_coefficients(self):
        fit = linear_fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert fit.predict([10.0])[0] == pytest.approx(21.0)

    def test_constant_regressor_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            linear_fit([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_needs_three_points(self):
        with pytest.raises(ValueError, match="three"):
            linear_fit([1.0, 2.0], [1.0, 2.0])


class TestExponentialFit:
    def test_recovers_eq2_constants_exactly(self):
        # The paper's Eq. 2 with the recovered exponent.
        x = np.linspace(0.05, 0.8, 40)
        y = 1.2969 * np.exp(-2.06 * x)
        fit = exponential_fit(x, y)
        assert fit.amplitude == pytest.approx(1.2969, rel=1e-6)
        assert fit.rate == pytest.approx(-2.06, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_exponential_recovered(self):
        rng = np.random.default_rng(5)
        x = np.linspace(0.05, 0.9, 400)
        y = 1.3 * np.exp(-2.0 * x) * np.exp(rng.normal(0, 0.05, size=400))
        fit = exponential_fit(x, y)
        assert fit.amplitude == pytest.approx(1.3, rel=0.05)
        assert fit.rate == pytest.approx(-2.0, rel=0.05)
        assert fit.r_squared > 0.9

    def test_gauss_newton_beats_log_linear_seed_on_raw_residuals(self):
        # Multiplicative fit (log-linear) is biased for additive noise;
        # the refinement must not do worse in raw R^2.
        rng = np.random.default_rng(9)
        x = np.linspace(0.0, 1.0, 300)
        y = 2.0 * np.exp(-1.5 * x) + rng.normal(0, 0.05, size=300)
        y = np.clip(y, 1e-3, None)
        fit = exponential_fit(x, y)
        seed = linear_fit(x, np.log(y))
        seed_prediction = np.exp(seed.intercept) * np.exp(seed.slope * x)
        assert fit.r_squared >= r_squared(y, seed_prediction) - 1e-9

    def test_positive_rate_also_works(self):
        x = np.linspace(0, 2, 30)
        y = 0.5 * np.exp(0.8 * x)
        fit = exponential_fit(x, y)
        assert fit.rate == pytest.approx(0.8, rel=1e-6)

    def test_rejects_nonpositive_response(self):
        with pytest.raises(ValueError, match="positive"):
            exponential_fit([0.0, 1.0, 2.0], [1.0, 0.0, 2.0])


class TestRSquared:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_mean_prediction_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_response_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            r_squared(np.array([2.0, 2.0]), np.array([1.0, 2.0]))
