"""Unit tests for curve-shape analysis (intersections, crossings, zones)."""

import numpy as np
import pytest

from repro.metrics.curves import (
    above_ideal_zone,
    ee_relative_curve,
    envelope,
    first_crossing,
    ideal_intersections,
    normalize_power,
)
from repro.metrics.ep import UTILIZATION_LEVELS

LEVELS = list(UTILIZATION_LEVELS)


def _convex(idle=0.1, p=4.0):
    """A curve that defers power: dips below the ideal line."""
    return [idle + (1 - idle) * (0.2 * u + 0.8 * u**p) for u in LEVELS]


def _concave(idle=0.4):
    """A curve that spends power early: stays above the ideal line."""
    return [idle + (1 - idle) * u**0.5 for u in LEVELS]


class TestNormalize:
    def test_peak_is_one(self):
        assert normalize_power(LEVELS, _concave())[-1] == pytest.approx(1.0)


class TestIdealIntersections:
    def test_concave_curve_never_crosses(self):
        assert ideal_intersections(LEVELS, _concave()) == []

    def test_convex_curve_crosses_once(self):
        crossings = ideal_intersections(LEVELS, _convex())
        assert len(crossings) == 1
        assert 0.0 < crossings[0] < 1.0

    def test_contact_at_full_load_excluded(self):
        # Linear curve touches the ideal line only at u=1.
        powers = [0.3 + 0.7 * u for u in LEVELS]
        assert ideal_intersections(LEVELS, powers) == []

    def test_double_crossing_detected(self):
        # The Fig. 10 "1U server" shape: above, below, above again.
        powers = [0.185, 0.28, 0.355, 0.425, 0.49, 0.5575, 0.585, 0.675,
                  0.825, 0.915, 1.0]
        crossings = ideal_intersections(LEVELS, powers)
        assert len(crossings) == 2
        assert 0.5 < crossings[0] < 0.6
        assert 0.7 < crossings[1] < 0.8

    def test_higher_ep_crosses_farther_from_full_load(self):
        gentle = ideal_intersections(LEVELS, _convex(idle=0.25, p=3.0))
        strong = ideal_intersections(LEVELS, _convex(idle=0.10, p=6.0))
        assert strong[0] < gentle[0]


class TestRelativeEfficiency:
    def test_full_load_reference_is_one(self):
        rel = ee_relative_curve(LEVELS, _concave())
        assert rel[-1] == pytest.approx(1.0)

    def test_idle_efficiency_is_zero(self):
        rel = ee_relative_curve(LEVELS, _concave())
        assert rel[0] == pytest.approx(0.0)

    def test_convex_curve_exceeds_one_mid_range(self):
        rel = ee_relative_curve(LEVELS, _convex())
        assert rel.max() > 1.0

    def test_concave_curve_never_exceeds_one(self):
        rel = ee_relative_curve(LEVELS, _concave())
        assert rel.max() <= 1.0 + 1e-12


class TestFirstCrossing:
    def test_crossing_order_is_consistent(self):
        powers = _convex()
        c08 = first_crossing(LEVELS, powers, 0.8)
        c10 = first_crossing(LEVELS, powers, 1.0)
        assert c08 < c10

    def test_unreachable_threshold_returns_nan(self):
        assert np.isnan(first_crossing(LEVELS, _concave(), 1.5))

    def test_crossing_interpolates_between_levels(self):
        powers = _convex()
        crossing = first_crossing(LEVELS, powers, 0.9)
        rel = ee_relative_curve(LEVELS, powers)
        below = max(u for u, r in zip(LEVELS, rel) if r < 0.9 and u < crossing)
        assert below < crossing


class TestAboveIdealZone:
    def test_concave_curve_has_no_zone(self):
        assert above_ideal_zone(LEVELS, _concave()) == pytest.approx(0.0)

    def test_convex_zone_is_positive_and_bounded(self):
        width = above_ideal_zone(LEVELS, _convex())
        assert 0.0 < width < 1.0

    def test_stronger_bow_widens_the_zone(self):
        narrow = above_ideal_zone(LEVELS, _convex(idle=0.25, p=3.0))
        wide = above_ideal_zone(LEVELS, _convex(idle=0.10, p=6.0))
        assert wide > narrow


class TestEnvelope:
    def test_envelope_bounds_every_member(self):
        family = np.array([_concave(idle) for idle in (0.2, 0.4, 0.6)])
        lower, upper = envelope(family)
        assert np.all(family >= lower - 1e-12)
        assert np.all(family <= upper + 1e-12)

    def test_single_curve_is_its_own_envelope(self):
        curve = np.array([_concave()])
        lower, upper = envelope(curve)
        assert np.allclose(lower, upper)

    def test_rejects_empty_family(self):
        with pytest.raises(ValueError):
            envelope(np.empty((0, 11)))
