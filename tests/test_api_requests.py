"""The frozen request catalog: validation, wire form, identity."""

import dataclasses
import json

import pytest

from repro.api import (
    ArtifactQuery,
    CapQuery,
    CdfQuery,
    FAMILIES,
    GroupQuery,
    PlacementQuery,
    QueryRequest,
    ReplayQuery,
    RunAllQuery,
    SweepQuery,
    StatsQuery,
    ValidateQuery,
    canonical_spec,
    request_from_dict,
    spec_suffix,
)
from repro.api.requests import REQUEST_TYPES


class TestCatalog:
    def test_every_family_tag_is_unique_and_non_empty(self):
        tags = [cls.family for cls in REQUEST_TYPES]
        assert all(tags)
        assert len(tags) == len(set(tags))

    def test_families_maps_every_type(self):
        assert set(FAMILIES.values()) == set(REQUEST_TYPES)

    def test_requests_are_frozen(self):
        request = StatsQuery()
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.metric = "score"

    def test_every_request_carries_the_explicit_common_fields(self):
        for cls in REQUEST_TYPES:
            names = {f.name for f in dataclasses.fields(cls)}
            assert {"seed", "fleet_backend", "format"} <= names, cls


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="fleet_backend"):
            StatsQuery(fleet_backend="gpu")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            StatsQuery(format="yaml")

    @pytest.mark.parametrize(
        "build",
        [
            lambda: ArtifactQuery(),
            lambda: StatsQuery(metric="wattage"),
            lambda: StatsQuery(hw_year_min=2016, hw_year_max=2013),
            lambda: CdfQuery(lo=0.5),
            lambda: CdfQuery(lo=0.5, hi=0.2),
            lambda: GroupQuery(by="vendor"),
            lambda: PlacementQuery(demand_fraction=1.5),
            lambda: PlacementQuery(policy="greedy"),
            lambda: PlacementQuery(servers=0),
            lambda: CapQuery(),
            lambda: CapQuery(power_cap_w=-1.0),
            lambda: ReplayQuery(steps=2),
            lambda: ReplayQuery(servers=0),
            lambda: SweepQuery(server=9),
            lambda: RunAllQuery(on_error="shrug"),
            lambda: ValidateQuery(),
        ],
    )
    def test_bad_field_values_raise(self, build):
        with pytest.raises(ValueError):
            build()


class TestWireForm:
    def test_round_trip_through_to_dict(self):
        request = ReplayQuery(servers=30, steps=8, policy="pack-to-full")
        assert request_from_dict(request.to_dict()) == request

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown query family"):
            request_from_dict({"family": "bogus"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            request_from_dict({"family": "stats", "metricc": "ep"})

    def test_missing_family_rejected(self):
        with pytest.raises(ValueError):
            request_from_dict({"metric": "ep"})


class TestIdentity:
    def test_spec_excludes_format_and_backend(self):
        base = ReplayQuery(servers=30, steps=8)
        for variant in (
            ReplayQuery(servers=30, steps=8, fleet_backend="scalar"),
            ReplayQuery(servers=30, steps=8, fleet_backend="columnar"),
            ReplayQuery(servers=30, steps=8, fleet_backend="sharded"),
            ReplayQuery(servers=30, steps=8, format="json"),
        ):
            assert canonical_spec(variant) == canonical_spec(base)
            assert spec_suffix(variant) == spec_suffix(base)

    def test_spec_tracks_identity_fields(self):
        assert canonical_spec(ReplayQuery(steps=8)) != canonical_spec(
            ReplayQuery(steps=12)
        )
        assert canonical_spec(StatsQuery(seed=1)) != canonical_spec(
            StatsQuery(seed=2)
        )

    def test_canonical_spec_is_canonical_json(self):
        document = json.loads(canonical_spec(StatsQuery()))
        assert document["family"] == "stats"
        assert "format" not in document
        assert "fleet_backend" not in document

    def test_artifact_suffix_is_the_bare_artifact_id(self):
        # so figure queries share disk-cache entries with run_all
        assert spec_suffix(ArtifactQuery(artifact_id="fig3")) == "fig3"

    def test_other_suffixes_are_namespaced(self):
        suffix = spec_suffix(StatsQuery())
        assert suffix.startswith("api:stats:")

    def test_base_class_defaults(self):
        assert QueryRequest.servable and QueryRequest.cacheable
