"""Tests for the forecast module, the heatmap renderer, and PSU
redundancy."""

import pytest

from repro.analysis.forecast import ep_headroom, spot_drift_forecast
from repro.viz.heatmap import heatmap, sweep_heatmap


class TestEpHeadroom:
    def test_projections_follow_eq2(self, corpus):
        projection = ep_headroom(corpus)
        # Lower idle -> higher projected EP, up to the ceiling.
        idles = sorted(projection.projections)
        values = [projection.projections[i] for i in idles]
        assert values == sorted(values, reverse=True)
        assert max(values) < projection.fitted_ceiling

    def test_paper_worked_example(self, corpus):
        projection = ep_headroom(corpus, idle_targets=(0.05,))
        assert projection.projections[0.05] == pytest.approx(1.17, abs=0.08)

    def test_current_fleet_below_ceiling(self, corpus):
        projection = ep_headroom(corpus)
        assert 0.3 < projection.banked_fraction < 0.8
        assert projection.current_mean_idle > 0.05

    def test_idle_target_validation(self, corpus):
        with pytest.raises(ValueError):
            ep_headroom(corpus, idle_targets=(1.2,))


class TestSpotDrift:
    def test_spot_drifts_downward(self, corpus):
        forecast = spot_drift_forecast(corpus)
        assert forecast.slope_per_year < 0.0
        assert forecast.fit_years[0] == 2010

    def test_forecast_reaches_the_paper_prediction(self, corpus):
        """Section IV.A: peak EE at 50% or 40% 'in the near future'."""
        forecast = spot_drift_forecast(corpus)
        year_50 = forecast.year_reaching(0.5)
        assert 2017 <= year_50 <= 2035

    def test_forecast_horizon(self, corpus):
        forecast = spot_drift_forecast(corpus, horizon=3)
        assert sorted(forecast.forecast) == [2017, 2018, 2019]

    def test_upward_drift_rejected_for_targets(self, corpus):
        forecast = spot_drift_forecast(corpus)
        object.__setattr__  # frozen dataclass; build a fake instead
        from repro.analysis.forecast import SpotDriftForecast

        rising = SpotDriftForecast(
            fit_years=(2010, 2011, 2012),
            mean_spots=(0.8, 0.85, 0.9),
            slope_per_year=0.05,
            forecast={},
        )
        with pytest.raises(ValueError):
            rising.year_reaching(0.5)
        assert forecast.slope_per_year < 0  # sanity on the real one


class TestHeatmap:
    def test_renders_grid_with_shades(self):
        grid = {(1.0, 1.0): 10.0, (1.0, 2.0): 20.0,
                (2.0, 1.0): 15.0, (2.0, 2.0): 30.0}
        text = heatmap(grid, row_label="r", column_label="c", title="T")
        assert "T" in text
        assert "@30" in text   # hottest cell gets the densest shade
        assert " 10" in text   # coldest cell gets the blank shade

    def test_flat_grid_does_not_divide_by_zero(self):
        text = heatmap({(0.0, 0.0): 5.0, (0.0, 1.0): 5.0})
        assert "5" in text

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            heatmap({})

    def test_sweep_heatmap_smoke(self):
        from repro.hwexp import TESTBED, run_sweep

        sweep = run_sweep(TESTBED[2])
        ee_map = sweep_heatmap(sweep, "ee")
        power_map = sweep_heatmap(sweep, "power")
        assert "Sugon" in ee_map
        assert "GB/core" in ee_map and "GHz" in ee_map
        assert "peak power" in power_map

    def test_sweep_heatmap_metric_validation(self):
        from repro.hwexp import TESTBED, run_sweep

        with pytest.raises(ValueError, match="metric"):
            sweep_heatmap(run_sweep(TESTBED[2]), "latency")


class TestPsuRedundancy:
    def _server(self, psu_count):
        from repro.power.components import SATA_SSD
        from repro.power.cpu import CpuPowerModel, default_voltage_curve
        from repro.power.memory import populate
        from repro.power.psu import PsuModel
        from repro.power.server import ServerPowerModel

        cpu = CpuPowerModel(
            tdp_w=90.0,
            cores=8,
            operating_points=default_voltage_curve([1.2, 2.4]),
        )
        return ServerPowerModel(
            cpus=[cpu, cpu],
            memory=populate(64, "DDR4"),
            disks=[SATA_SSD],
            psu=PsuModel(rated_w=400.0),
            psu_count=psu_count,
        )

    def test_redundancy_costs_power_at_idle(self):
        single = self._server(1)
        redundant = self._server(2)
        assert redundant.idle_wall_power_w() > single.idle_wall_power_w()

    def test_redundancy_cost_shrinks_at_full_load(self):
        single = self._server(1)
        redundant = self._server(2)
        idle_penalty = (
            redundant.idle_wall_power_w() / single.idle_wall_power_w() - 1.0
        )
        peak_penalty = (
            redundant.peak_wall_power_w() / single.peak_wall_power_w() - 1.0
        )
        assert idle_penalty > peak_penalty - 1e-9

    def test_redundancy_lowers_proportionality(self):
        from repro.metrics.ep import UTILIZATION_LEVELS, energy_proportionality

        def ep_of(server):
            levels = list(UTILIZATION_LEVELS)
            powers = [server.wall_power_w(u, 2.4) for u in levels]
            return energy_proportionality(levels, powers)

        assert ep_of(self._server(2)) <= ep_of(self._server(1)) + 1e-6

    def test_zero_psus_rejected(self):
        with pytest.raises(ValueError):
            self._server(0)
