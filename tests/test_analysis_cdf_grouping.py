"""Tests for the CDF analysis (Fig. 5) and the grouping analyses
(Figs. 6-8, 17, Table I)."""

import pytest

from repro.analysis.cdf import decile_shares, empirical_cdf, ep_cdf
from repro.analysis.grouping import (
    best_memory_per_core,
    codename_ep_table,
    family_counts,
    family_table,
    memory_per_core_table,
    mix_by_year,
    stagnation_explanation,
)
from repro.power.microarch import Codename, Family


class TestEmpiricalCdf:
    def test_monotone_and_bounded(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        xs = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
        values = [cdf(x) for x in xs]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_share_in_band(self):
        cdf = empirical_cdf([0.1, 0.2, 0.3, 0.4])
        assert cdf.share_in(0.15, 0.35) == pytest.approx(0.5)

    def test_quantile(self):
        cdf = empirical_cdf(list(range(101)))
        assert cdf.quantile(0.5) == pytest.approx(50.0)

    def test_series_lengths(self):
        cdf = empirical_cdf([1.0, 2.0])
        xs, ys = cdf.series()
        assert len(xs) == len(ys) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestEpCdf:
    def test_landmarks_match_paper(self, corpus):
        cdf = ep_cdf(corpus)
        assert cdf.share_in(0.6, 0.7) == pytest.approx(0.2521, abs=0.05)
        assert cdf.share_in(0.8, 0.9) == pytest.approx(0.1744, abs=0.05)
        assert cdf(1.0 - 1e-9) == pytest.approx(0.9958, abs=0.003)

    def test_decile_shares_sum_to_one(self, corpus):
        shares = decile_shares(ep_cdf(corpus))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_the_two_biggest_bands(self, corpus):
        shares = decile_shares(ep_cdf(corpus))
        ranked = sorted(shares, key=shares.get, reverse=True)
        assert (0.6, 0.7) in ranked[:2]


class TestFamilyGrouping:
    def test_counts_match_corpus(self, corpus):
        counts = family_counts(corpus)
        assert sum(counts.values()) == 477

    def test_table_sorted_by_count(self, corpus):
        table = family_table(corpus)
        counts = [stat.count for stat in table]
        assert counts == sorted(counts, reverse=True)

    def test_nehalem_is_largest_family(self, corpus):
        table = family_table(corpus)
        assert table[0].label == Family.NEHALEM.value

    def test_codename_table_sorted_by_ep(self, corpus):
        table = codename_ep_table(corpus)
        means = [stat.ep.mean for stat in table]
        assert means == sorted(means, reverse=True)

    def test_codename_table_scoped_to_family(self, corpus):
        table = codename_ep_table(corpus, family=Family.CORE)
        labels = {stat.label for stat in table}
        assert labels == {"Core", "Penryn", "Yorkfield"}

    def test_mix_by_year_covers_2012_2016(self, corpus):
        mix = mix_by_year(corpus)
        assert set(mix) == {2012, 2013, 2014, 2015, 2016}
        assert mix[2016][Codename.HASWELL] == 10

    def test_stagnation_is_specious(self, corpus):
        """Section III.B: the 2013-14 dip is a mix artifact."""
        explanation = stagnation_explanation(corpus)
        assert explanation["observed_2013_2014"] < explanation[
            "counterfactual_2012_mix"
        ]
        assert explanation["observed_2015_2016"] > explanation[
            "observed_2013_2014"
        ]


class TestMemoryPerCore:
    def test_table1_counts(self, corpus):
        table = memory_per_core_table(corpus)
        by_label = {stat.label: stat.count for stat in table}
        assert by_label["1"] == 153
        assert by_label["2"] == 123
        assert by_label["1.5"] == 68

    def test_min_count_excludes_thin_buckets(self, corpus):
        table = memory_per_core_table(corpus, min_count=50)
        assert all(stat.count >= 50 for stat in table)

    def test_best_ratios_match_fig17(self, corpus):
        best = best_memory_per_core(corpus)
        assert best["ep"] == pytest.approx(1.5)
        assert best["ee"] == pytest.approx(1.78)
