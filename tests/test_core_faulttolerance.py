"""End-to-end failure semantics: retries, isolation, timeouts, degraded
cache, and the hardened ensemble, all driven by the deterministic fault
harness (:mod:`repro.core.faults`)."""

import time
import warnings

import pytest

from repro.core.cache import MAX_WRITE_FAILURES, ArtifactCache
from repro.core.executor import ArtifactExecutor
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.registry import REGISTRY
from repro.core.resilience import (
    BuildError,
    FailureLedger,
    RetryPolicy,
    TransientError,
)
from repro.core.study import Study

SUBSET = ["fig3", "fig5", "eq2", "wong"]
SWEEP_SUBSET = ["fig18", "fig20", "fig21"]


def _plan(*specs, seed=0):
    return FaultPlan(list(specs), seed=seed)


@pytest.fixture(scope="module")
def baseline(corpus):
    """Fault-free reference results for the two artifact subsets."""
    study = Study(corpus=corpus)
    report = ArtifactExecutor(study, jobs=1).run(SUBSET + SWEEP_SUBSET)
    return report.results


class TestRetryMasksTransients:
    """A fail-once transient plus one retry must be invisible."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_results_bit_identical_and_ledger_empty(
        self, corpus, baseline, series_equal, jobs
    ):
        study = Study(corpus=corpus)
        plan = _plan(
            FaultSpec(site="builder.fig5", mode="fail-once",
                      error="transient")
        )
        report = ArtifactExecutor(
            study, jobs=jobs, on_error="isolate",
            retry=RetryPolicy(attempts=2, base_delay_s=0.001),
            faults=plan,
        ).run(SUBSET)
        assert report.ok
        assert len(report.failures) == 0
        assert plan.fired("builder.fig5") == 1
        for artifact_id in SUBSET:
            assert report[artifact_id].text == baseline[artifact_id].text
            assert series_equal(
                report[artifact_id].series, baseline[artifact_id].series
            )

    def test_without_retry_the_same_fault_quarantines(self, corpus):
        study = Study(corpus=corpus)
        plan = _plan(FaultSpec(site="builder.fig5"))
        report = ArtifactExecutor(
            study, jobs=1, on_error="isolate", faults=plan
        ).run(SUBSET)
        assert report.failures.failed_ids == ("fig5",)
        assert not report.ok

    def test_retry_exhaustion_records_the_attempt_count(self, corpus):
        study = Study(corpus=corpus)
        plan = _plan(
            FaultSpec(site="builder.fig5", mode="fail", error="transient")
        )
        report = ArtifactExecutor(
            study, jobs=1, on_error="isolate",
            retry=RetryPolicy(attempts=3, base_delay_s=0.0),
            faults=plan,
        ).run(SUBSET)
        (record,) = list(report.failures)
        assert record.attempts == 3
        assert plan.fired("builder.fig5") == 3


class TestIsolation:
    def test_permanent_fault_quarantines_exactly_that_artifact(
        self, corpus, baseline, series_equal
    ):
        study = Study(corpus=corpus)
        report = ArtifactExecutor(
            study, jobs=4, on_error="isolate",
            faults=_plan(
                FaultSpec(site="builder.fig5", mode="fail", error="build")
            ),
        ).run(SUBSET)
        assert report.failures.root_ids == ("fig5",)
        assert report.failures.quarantined_ids == ()
        assert sorted(report.results) == sorted(
            fid for fid in SUBSET if fid != "fig5"
        )
        for artifact_id in report.results:
            assert series_equal(
                report[artifact_id].series, baseline[artifact_id].series
            )
        (record,) = list(report.failures)
        assert record.error_type == "BuildError"
        assert record.taxonomy == "build"

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_resource_failure_quarantines_dependents(self, corpus, jobs):
        study = Study(corpus=corpus)
        report = ArtifactExecutor(
            study, jobs=jobs, on_error="isolate",
            faults=_plan(
                FaultSpec(site="resource.sweep:4", mode="fail",
                          error="transient")
            ),
        ).run(SWEEP_SUBSET)
        # fig20 and fig21 both depend on sweep 4; fig18 does not.
        assert report.failures.root_ids == ("sweep:4",)
        assert set(report.failures.quarantined_ids) == {"fig20", "fig21"}
        assert sorted(report.results) == ["fig18"]
        assert report.quarantined == {"fig20": "sweep:4", "fig21": "sweep:4"}

    def test_ledger_is_reproducible_across_runs_and_jobs(self, corpus):
        def ledger(jobs):
            study = Study(corpus=corpus)
            return ArtifactExecutor(
                study, jobs=jobs, on_error="isolate",
                faults=_plan(
                    FaultSpec(site="resource.sweep:4", mode="fail",
                              error="transient")
                ),
            ).run(SWEEP_SUBSET).failures.signature()

        first = ledger(jobs=1)
        assert first == ledger(jobs=1)
        assert first == ledger(jobs=4)

    def test_invalid_on_error_rejected(self, corpus):
        with pytest.raises(ValueError, match="on_error"):
            ArtifactExecutor(Study(corpus=corpus), on_error="ignore")

    def test_study_run_all_isolate_returns_the_report(self, corpus):
        study = Study(corpus=corpus)
        report = study.run_all(
            on_error="isolate",
            faults=_plan(
                FaultSpec(site="builder.fig5", mode="fail", error="build")
            ),
        )
        assert report.failures.failed_ids == ("fig5",)
        assert "fig3" in report.results


class TestRaiseMode:
    def test_serial_failure_is_recorded_before_the_raise(self, corpus):
        """Regression: the serial path used to raise without appending
        to the errors list, unlike the parallel path."""
        study = Study(corpus=corpus)
        executor = ArtifactExecutor(
            study, jobs=1,
            faults=_plan(
                FaultSpec(site="builder.fig3", mode="fail", error="build")
            ),
        )
        errors, ledger = [], FailureLedger()
        with pytest.raises(BuildError):
            executor._build(
                [REGISTRY["fig3"]], "", {}, {}, {}, errors, ledger
            )
        assert errors == ["fig3: BuildError('injected build fault at "
                          "builder.fig3')"]
        assert ledger.root_ids == ("fig3",)

    def test_parallel_abort_drains_inflight_builds(self, corpus, monkeypatch):
        """Regression: abort used to cancel and re-raise immediately,
        leaving running futures free to mutate shared dicts later."""
        import repro.core.study as study_module

        study = Study(corpus=corpus)
        real = study_module.Study._fig03
        release = {"at": time.monotonic() + 0.6}

        def slow_fig3(self):
            while time.monotonic() < release["at"]:
                time.sleep(0.01)
            return real(self)

        monkeypatch.setattr(study_module.Study, "_fig03", slow_fig3)
        executor = ArtifactExecutor(
            study, jobs=2,
            faults=_plan(
                FaultSpec(site="builder.eq2", mode="fail", error="build")
            ),
        )
        results, errors = {}, []
        with pytest.raises(BuildError):
            executor._build(
                [REGISTRY["fig3"], REGISTRY["eq2"]], "", results, {}, {},
                errors, FailureLedger(),
            )
        # The slow in-flight fig3 build was drained to completion (its
        # result landed) before the abort propagated.
        assert "fig3" in results
        assert errors == ["eq2: BuildError('injected build fault at "
                          "builder.eq2')"]

    def test_parallel_raise_matches_serial(self, corpus):
        for jobs in (1, 4):
            study = Study(corpus=corpus)
            with pytest.raises(BuildError):
                ArtifactExecutor(
                    study, jobs=jobs,
                    faults=_plan(
                        FaultSpec(site="builder.fig5", mode="fail",
                                  error="build")
                    ),
                ).run(SUBSET)


class TestTimeouts:
    def test_overrunning_builder_times_out_into_the_ledger(
        self, corpus, monkeypatch
    ):
        import repro.core.study as study_module

        def stuck(self):
            time.sleep(30.0)

        monkeypatch.setattr(study_module.Study, "_fig05", stuck)
        study = Study(corpus=corpus)
        report = ArtifactExecutor(
            study, jobs=1, on_error="isolate", timeout_s=0.1
        ).run(["fig5", "eq2"])
        (record,) = list(report.failures)
        assert record.artifact_id == "fig5"
        assert record.error_type == "BuildTimeout"
        assert record.taxonomy == "transient"
        assert "eq2" in report.results

    def test_invalid_timeout_rejected(self, corpus):
        with pytest.raises(ValueError, match="timeout_s"):
            ArtifactExecutor(Study(corpus=corpus), timeout_s=-1.0)


class TestCacheDegradation:
    def test_read_faults_degrade_to_misses(
        self, corpus, tmp_path, series_equal, baseline
    ):
        study = Study(corpus=corpus)
        cache = ArtifactCache(tmp_path / "store")
        ArtifactExecutor(study, jobs=1, cache=cache).run(SUBSET)
        plan = _plan(
            FaultSpec(site="cache.read", mode="fail-n", times=2,
                      error="cache")
        )
        cache.faults = plan
        report = ArtifactExecutor(study, jobs=1, cache=cache).run(SUBSET)
        assert report.ok
        assert plan.fired("cache.read") == 2
        # Two probes failed over to rebuilds; the rest hit the store.
        assert report.cache_hits == len(SUBSET) - 2
        for artifact_id in SUBSET:
            assert series_equal(
                report[artifact_id].series, baseline[artifact_id].series
            )

    def test_persistent_write_failures_disable_the_store(
        self, corpus, tmp_path
    ):
        study = Study(corpus=corpus)
        cache = ArtifactCache(
            tmp_path / "store",
            faults=_plan(
                FaultSpec(site="cache.write", mode="fail", error="os")
            ),
        )
        with pytest.warns(RuntimeWarning, match="disabled after"):
            report = ArtifactExecutor(study, jobs=1, cache=cache).run(SUBSET)
        assert report.ok  # the run itself never noticed
        assert cache.disabled
        assert cache.stats.write_failures >= MAX_WRITE_FAILURES
        assert cache.entries() == []

    def test_corrupt_read_evicts_and_rebuilds(self, corpus, tmp_path):
        study = Study(corpus=corpus)
        cache = ArtifactCache(tmp_path / "store")
        ArtifactExecutor(study, jobs=1, cache=cache).run(["fig3"])
        cache.faults = _plan(
            FaultSpec(site="cache.read", mode="corrupt", times=1)
        )
        report = ArtifactExecutor(study, jobs=1, cache=cache).run(["fig3"])
        assert report.ok
        assert report.cache_hits == 0
        assert cache.stats.evictions == 1
        # The rebuild rewrote the entry; a clean probe now hits.
        assert cache.get(study.fingerprint, "fig3") is not None


class TestEnsembleHardening:
    def test_jobs_must_be_positive(self):
        from repro.core.ensemble import run_ensemble

        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_ensemble([2016], jobs=0)

    def test_worker_fault_is_retried_and_masked(self):
        from repro.core.ensemble import run_ensemble

        reference = run_ensemble([2016, 2017])
        plan = _plan(FaultSpec(site="ensemble.worker", error="transient"))
        result = run_ensemble([2016, 2017], faults=plan, seed_retries=1)
        assert plan.fired("ensemble.worker") == 1
        assert result.per_seed == reference.per_seed

    def test_worker_fault_budget_exhaustion_raises(self):
        from repro.core.ensemble import run_ensemble

        plan = _plan(
            FaultSpec(site="ensemble.worker", mode="fail", error="transient")
        )
        with pytest.raises(TransientError, match="injected ensemble.worker"):
            run_ensemble([2016, 2017], faults=plan, seed_retries=1)

    def test_parallel_injection_matches_serial(self):
        from repro.core.ensemble import run_ensemble

        serial = run_ensemble(
            [2016, 2017],
            faults=_plan(FaultSpec(site="ensemble.worker")),
            seed_retries=1,
        )
        parallel = run_ensemble(
            [2016, 2017], jobs=2,
            faults=_plan(FaultSpec(site="ensemble.worker")),
            seed_retries=1,
        )
        assert serial.per_seed == parallel.per_seed

    def test_broken_pool_degrades_to_serial(self, monkeypatch):
        """A worker process that dies (not raises) breaks the pool; the
        engine restarts it up to ``pool_restarts`` times and then
        degrades to serial execution under a RuntimeWarning."""
        import os

        import repro.core.ensemble as ensemble_module

        main_pid = os.getpid()
        real = ensemble_module.seed_statistics

        def deadly(seed, structural_effects=True):
            if os.getpid() != main_pid:
                os._exit(1)  # kill the pool worker outright
            return real(seed, structural_effects=structural_effects)

        monkeypatch.setattr(ensemble_module, "seed_statistics", deadly)
        with pytest.warns(RuntimeWarning, match="degrading"):
            result = ensemble_module.run_ensemble(
                [2016, 2017], jobs=2, pool_restarts=0
            )
        assert result.seeds == (2016, 2017)
        assert [stats.seed for stats in result.per_seed] == [2016, 2017]
