"""The serve daemon: coalescing, batching, memo, HTTP, warm restarts."""

import asyncio
import json
import threading

import pytest

from repro.api import QueryContext, execute
from repro.core.cache import ArtifactCache
from repro.serve import ServeApp, ServeClient, start_daemon_thread

REPLAY = {"family": "replay", "servers": 30, "steps": 8}


def run_async(coro):
    return asyncio.run(coro)


def decode(body):
    return json.loads(body.decode("utf-8"))


def payload_and_text(document):
    return (
        json.dumps(document["payload"], sort_keys=True),
        document["text"],
    )


class TestCoalescing:
    def test_concurrent_identical_queries_share_one_computation(self):
        app = ServeApp()
        app.warm()

        async def burst():
            return await asyncio.gather(
                *(app.handle_query(dict(REPLAY)) for _ in range(64))
            )

        answers = run_async(burst())
        assert {status for status, _body in answers} == {200}
        bodies = {payload_and_text(decode(body)) for _status, body in answers}
        assert len(bodies) == 1
        assert app.stats.computations == 1
        assert app.stats.coalesced + app.stats.memo_hits == 63

    def test_memo_serves_repeats_without_computing(self):
        app = ServeApp()
        app.warm()

        async def twice():
            first = await app.handle_query(dict(REPLAY))
            second = await app.handle_query(dict(REPLAY))
            return first, second

        first, second = run_async(twice())
        assert first[1] == second[1]  # byte-identical response
        assert app.stats.computations == 1
        assert app.stats.memo_hits == 1

    def test_memo_is_bounded(self):
        app = ServeApp(memo_size=2)
        app._memo_put("a", b"1")
        app._memo_put("b", b"2")
        app._memo_put("c", b"3")
        assert app._memo_get("a") is None
        assert app._memo_get("c") == b"3"

    def test_memo_is_bounded_by_bytes(self):
        app = ServeApp(memo_size=100, memo_bytes=10)
        app._memo_put("a", b"xxxx")
        app._memo_put("b", b"yyyy")
        app._memo_put("c", b"zzzz")  # 12 bytes total: evict oldest
        assert app._memo_get("a") is None
        assert app._memo_get("b") == b"yyyy"
        assert app._memo_get("c") == b"zzzz"
        assert app._memo_total == 8

    def test_memo_replacement_keeps_byte_count_exact(self):
        app = ServeApp(memo_bytes=100)
        app._memo_put("a", b"xxxx")
        app._memo_put("a", b"yy")
        assert app._memo_total == 2

    def test_oversized_body_is_not_retained(self):
        app = ServeApp(memo_bytes=4)
        app._memo_put("a", b"way too large to memoize")
        assert app._memo_get("a") is None
        assert app._memo_total == 0

    def test_stats_expose_memo_bytes(self):
        app = ServeApp()
        app._memo_put("a", b"xxxx")
        extra = app.stats_payload()["stats"]
        assert extra["memo_bytes"] == 4
        assert extra["memo_entries"] == 1


class TestBatching:
    def test_window_merges_compatible_queries_into_groups(self):
        app = ServeApp()
        app.warm()
        cohort = {"servers": 30, "hw_year_min": 2016, "hw_year_max": 2016}
        payloads = [
            {"family": "replay", "steps": 8, **cohort},
            {"family": "replay", "steps": 8, "policy": "pack-to-full",
             **cohort},
            {"family": "placement", "demand_fraction": 0.25, **cohort},
            {"family": "placement", "demand_fraction": 0.75, **cohort},
            {"family": "cap", "power_cap_w": 5000.0, **cohort},
        ]

        async def burst():
            return await asyncio.gather(
                *(app.handle_query(dict(p)) for p in payloads)
            )

        answers = run_async(burst())
        assert {status for status, _ in answers} == {200}
        # same cohort (seed, years, servers) -> one merged group
        assert app._batch.groups == 1
        assert app._batch.batched == len(payloads)

    def test_batched_results_equal_serial_execution(self):
        app = ServeApp()
        app.warm()
        payloads = [
            {"family": "placement", "servers": 30, "demand_fraction": f}
            for f in (0.2, 0.4, 0.6, 0.8)
        ]

        async def burst():
            return await asyncio.gather(
                *(app.handle_query(dict(p)) for p in payloads)
            )

        answers = run_async(burst())
        serial = QueryContext()
        for payload, (status, body) in zip(payloads, answers):
            assert status == 200
            batched = decode(body)["payload"]
            from repro.api import request_from_dict

            reference = execute(request_from_dict(dict(payload)), serial)
            assert batched == json.loads(
                json.dumps(reference.to_dict()["payload"])
            )

    def test_incompatible_cohorts_split_groups(self):
        app = ServeApp()
        app.warm()
        payloads = [
            {"family": "replay", "servers": 30, "steps": 8},
            {"family": "replay", "servers": 40, "steps": 8},
        ]

        async def burst():
            return await asyncio.gather(
                *(app.handle_query(dict(p)) for p in payloads)
            )

        run_async(burst())
        assert app._batch.groups == 2
        assert app._batch.batched == 0


class TestWarmRestart:
    def test_restarted_daemon_serves_identical_bytes(self, tmp_path):
        cache_dir = tmp_path / "store"
        first_app = ServeApp(cache=ArtifactCache(cache_dir))
        first_app.warm()
        status, body = run_async(first_app.handle_query(dict(REPLAY)))
        assert status == 200
        cold = payload_and_text(decode(body))
        assert first_app.stats.disk_hits == 0

        second_app = ServeApp(cache=ArtifactCache(cache_dir))
        second_app.warm()
        status, body = run_async(second_app.handle_query(dict(REPLAY)))
        assert status == 200
        warm = payload_and_text(decode(body))
        assert warm == cold
        assert second_app.stats.disk_hits == 1
        assert decode(body)["provenance"]["cache_hit"] is True


class TestErrors:
    def test_unknown_family_is_400(self):
        app = ServeApp()
        status, body = run_async(app.handle_query({"family": "bogus"}))
        assert status == 400 and "error" in decode(body)

    def test_unservable_family_is_400(self):
        app = ServeApp()
        status, body = run_async(app.handle_query({"family": "run_all"}))
        assert status == 400
        assert "not servable" in decode(body)["error"]

    def test_bad_field_is_400(self):
        app = ServeApp()
        status, body = run_async(
            app.handle_query({"family": "stats", "metric": "wattage"})
        )
        assert status == 400
        assert app.stats.errors == 1


@pytest.fixture(scope="module")
def daemon():
    handle = start_daemon_thread()
    yield handle
    handle.stop()


class TestDaemonHttp:
    def test_healthz(self, daemon):
        assert ServeClient(port=daemon.port).healthz() == {"status": "ok"}

    def test_query_envelope(self, daemon):
        client = ServeClient(port=daemon.port)
        status, document = client.query(dict(REPLAY))
        assert status == 200
        assert document["family"] == "replay"
        assert document["provenance"]["fleet_backend"] in (
            "scalar", "columnar"
        )

    def test_artifacts_listing(self, daemon):
        listing = ServeClient(port=daemon.port).artifacts()
        assert any(a["id"] == "fig3" for a in listing["artifacts"])

    def test_stats_counters_exposed(self, daemon):
        client = ServeClient(port=daemon.port)
        client.query(dict(REPLAY))
        stats = client.stats()["stats"]
        assert stats["queries"] >= 1
        for counter in ("memo_hits", "coalesced", "computations",
                        "batched", "batch_groups", "errors"):
            assert counter in stats

    def test_invalid_json_is_400(self, daemon):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30
        )
        connection.request("POST", "/query", body=b"{nope")
        response = connection.getresponse()
        assert response.status == 400
        assert b"valid JSON" in response.read()
        connection.close()

    def test_unknown_route_is_404(self, daemon):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30
        )
        connection.request("GET", "/nope")
        assert connection.getresponse().status == 404
        connection.close()

    def test_sixty_four_concurrent_clients_one_computation(self):
        app = ServeApp()
        handle = start_daemon_thread(app)
        try:
            answers = [None] * 64

            def worker(index):
                client = ServeClient(port=handle.port)
                answers[index] = client.query(dict(REPLAY))
                client.close()

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(64)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert {status for status, _ in answers} == {200}
            bodies = {
                payload_and_text(document) for _status, document in answers
            }
            assert len(bodies) == 1
            assert app.stats.computations == 1
        finally:
            handle.stop()
