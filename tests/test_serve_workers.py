"""The serve worker pool: forked workers, routing, crash recovery."""

import asyncio
import json
import threading

import pytest

from repro.core import faults
from repro.core.faults import FaultPlan, FaultSpec
from repro.serve import EngineWorkerPool, ServeApp
from repro.serve.workers import _Worker

REPLAY = {"family": "replay", "servers": 30, "steps": 8}
STATS = {"family": "stats", "metric": "ep"}
PLACEMENT = {"family": "placement", "servers": 48, "demand_fraction": 0.4}


def drive(app, payloads):
    async def go():
        return [await app.handle_query(dict(p)) for p in payloads]

    return asyncio.run(go())


def pooled_app(workers=2, **kwargs):
    app = ServeApp(workers=workers, **kwargs)
    app.warm()
    return app


def normalized(body):
    """Decode a response, dropping the volatile provenance fields."""
    document = json.loads(body)
    document["provenance"].pop("worker")
    document["provenance"].pop("wall_time_ms")
    return document


class TestPoolExecution:
    def test_responses_bit_identical_to_in_thread(self):
        payloads = [REPLAY, STATS, PLACEMENT]
        pooled = pooled_app(workers=2)
        try:
            pooled_answers = drive(pooled, payloads)
        finally:
            pooled.stop_workers()
        baseline = pooled_app(workers=0)
        baseline_answers = drive(baseline, payloads)
        for (ps, pb), (bs, bb) in zip(pooled_answers, baseline_answers):
            assert ps == bs == 200
            assert normalized(pb) == normalized(bb)

    def test_provenance_carries_worker_stamp(self):
        app = pooled_app(workers=2)
        try:
            [(status, body)] = drive(app, [STATS])
        finally:
            app.stop_workers()
        assert status == 200
        worker = json.loads(body)["provenance"]["worker"]
        assert worker in ("w0", "w1")

    def test_in_thread_provenance_is_unstamped(self):
        app = pooled_app(workers=0)
        [(status, body)] = drive(app, [STATS])
        assert status == 200
        assert json.loads(body)["provenance"]["worker"] == "-"

    def test_sticky_routing_is_deterministic(self):
        pool = EngineWorkerPool(context=None, size=4)
        first = pool.route_index("spec-key-a")
        assert pool.route_index("spec-key-a") == first
        routes = {pool.route_index(f"spec-key-{i}") for i in range(64)}
        assert routes == {0, 1, 2, 3}  # distinct keys spread the pool

    def test_worker_stats_count_served(self):
        app = pooled_app(workers=2)
        try:
            answers = drive(app, [REPLAY, PLACEMENT, STATS])
        finally:
            app.stop_workers()
        assert all(status == 200 for status, _body in answers)
        document = app.stats_payload()
        workers = document["workers"]
        assert [entry["index"] for entry in workers] == [0, 1]
        assert set(workers[0]) == {
            "index", "pid", "alive", "inflight", "served", "restarts",
        }
        assert sum(entry["served"] for entry in workers) == len(answers)
        assert document["stats"]["worker_restarts"] == 0


class TestWorkerDeath:
    def test_single_death_is_masked_bit_identically(self):
        app = pooled_app(workers=2)
        plan = FaultPlan(
            [FaultSpec(site="serve.worker", mode="fail-once")], seed=7
        )
        try:
            with faults.install(plan):
                [(status, body)] = drive(app, [REPLAY])
        finally:
            app.stop_workers()
        assert status == 200
        assert app._pool.restarts == 1
        clean = pooled_app(workers=0)
        [(_status, clean_body)] = drive(clean, [REPLAY])
        assert normalized(body) == normalized(clean_body)

    def test_double_death_is_a_transient_503(self):
        app = pooled_app(workers=2)
        plan = FaultPlan(
            [FaultSpec(site="serve.worker", mode="fail-n", times=2)], seed=7
        )
        try:
            with faults.install(plan):
                [(status, body)] = drive(app, [REPLAY])
            assert status == 503
            assert "died twice" in json.loads(body)["error"]
            assert app._pool.restarts == 2
            # worker death is transient: the breaker must NOT trip,
            # and the respawned worker answers the retry normally
            assert app.stats_payload()["stats"]["breaker_trips"] == 0
            [(again, again_body)] = drive(app, [REPLAY])
        finally:
            app.stop_workers()
        assert again == 200
        assert json.loads(again_body)["payload"]

    def test_replacement_workers_come_up_via_spawn(self):
        # respawn runs on an executor thread while the parent is
        # multithreaded: forking there can deadlock the child, so
        # replacements must use the spawn context
        app = pooled_app(workers=2)
        plan = FaultPlan(
            [FaultSpec(site="serve.worker", mode="fail-once")], seed=7
        )
        try:
            with faults.install(plan):
                [(status, _body)] = drive(app, [REPLAY])
            assert status == 200
            replaced = [w for w in app._pool._workers if w.restarts]
            assert replaced
            assert all(
                type(w.process).__name__ == "SpawnProcess" for w in replaced
            )
        finally:
            app.stop_workers()

    def test_stop_reaps_workers_without_touching_a_busy_pipe(self):
        # an abandoned exchange may still own a worker's pipe at
        # shutdown; stop() must skip the polite stop message (the
        # Connection is not thread-safe) and still reap the worker
        app = pooled_app(workers=1)
        pool = app._pool
        worker = pool._workers[0]
        assert worker.io_lock.acquire(timeout=1.0)
        try:
            pool.stop(timeout_s=0.5)
        finally:
            worker.io_lock.release()
        assert all(not entry["alive"] for entry in pool.worker_stats())

    def test_stop_workers_is_idempotent(self):
        app = pooled_app(workers=2)
        app.stop_workers()
        app.stop_workers()
        pool = app._pool
        assert all(not entry["alive"] for entry in pool.worker_stats())


def gated_pool():
    """A started pool whose (fake) pipe exchange blocks on an event.

    White-box: replaces the exchange with a gate the test controls, so
    cancellation-vs-lock ordering is asserted without racing real
    compute times.
    """
    gate = threading.Event()
    pool = EngineWorkerPool(context=None, size=1)
    pool._exchange_with_recovery = lambda worker, requests: [
        f"answer:{request}" for request in requests
    ] if gate.wait(10.0) else None
    pool._stamp = lambda result, worker: result
    pool._workers = [_Worker(0, None, None)]
    pool._started = True
    return pool, gate


class TestAbandonedExchange:
    def test_cancelled_submit_holds_lock_until_exchange_done(self):
        # a deadline-cancelled submit abandons the flight, but the
        # executor thread is still on the pipe: the worker lock must
        # stay held until the exchange finishes, or the next request
        # would interleave with (and steal the reply of) the old one
        pool, gate = gated_pool()
        worker = pool._workers[0]

        async def go():
            lock = worker.lock_for(asyncio.get_running_loop())
            first = asyncio.create_task(pool.submit("slow", "key"))
            await asyncio.sleep(0.05)  # exchange thread is inside the gate
            assert worker.inflight == 1
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            await asyncio.sleep(0)  # let any (buggy) done callback run
            assert lock.locked(), "lock freed while exchange still running"
            assert worker.inflight == 1
            second = asyncio.create_task(pool.submit("fast", "key"))
            await asyncio.sleep(0.05)
            assert not second.done()  # queued behind the abandoned flight
            gate.set()
            return await second

        assert asyncio.run(go()) == "answer:fast"
        assert worker.inflight == 0

    def test_executor_refusal_releases_lock(self):
        # loop.run_in_executor raising synchronously (executor shut
        # down during drain) must not wedge the worker's route
        pool, gate = gated_pool()
        gate.set()
        worker = pool._workers[0]

        async def go():
            loop = asyncio.get_running_loop()

            def refuse(executor, fn, *args):
                raise RuntimeError("executor shut down")

            loop.run_in_executor = refuse
            with pytest.raises(RuntimeError):
                await pool.submit("x", "key")
            assert worker.inflight == 0
            assert not worker.lock_for(loop).locked()

        asyncio.run(go())


class TestPoolLifecycle:
    def test_submit_before_start_raises(self):
        pool = EngineWorkerPool(context=None, size=1)

        async def go():
            await pool.submit(object(), "key")

        with pytest.raises(RuntimeError):
            asyncio.run(go())

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineWorkerPool(context=None, size=0)

    def test_app_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ServeApp(workers=-1)
