"""Shared fixtures: the calibrated corpus is expensive enough (~1.5 s
plus cached derived metrics) that the whole suite shares one instance.
"""

from __future__ import annotations

import pytest

from repro.core.study import Study
from repro.dataset.corpus import Corpus
from repro.dataset.synthesis import generate_corpus


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """The default-seed calibrated 477-server corpus."""
    return generate_corpus(seed=2016)


@pytest.fixture(scope="session")
def study(corpus) -> Study:
    """A Study wrapping the shared corpus."""
    return Study(corpus=corpus)


def _values_equal(a, b) -> bool:
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_equal(a[key], b[key]) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    import numpy as np

    return bool(np.all(a == b))


@pytest.fixture(scope="session")
def series_equal():
    """Recursive equality over artifact ``series`` payloads.

    Handles the numpy arrays nested inside analysis dataclasses, where
    a bare ``==`` would be elementwise.
    """
    return _values_equal


@pytest.fixture()
def ideal_curve():
    """The ideal proportional curve at the eleven measurement points."""
    from repro.metrics.ep import UTILIZATION_LEVELS

    levels = list(UTILIZATION_LEVELS)
    return levels, levels[:]
