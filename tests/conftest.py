"""Shared fixtures: the calibrated corpus is expensive enough (~1.5 s
plus cached derived metrics) that the whole suite shares one instance.
"""

from __future__ import annotations

import pytest

from repro.core.study import Study
from repro.dataset.corpus import Corpus
from repro.dataset.synthesis import generate_corpus


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    """The default-seed calibrated 477-server corpus."""
    return generate_corpus(seed=2016)


@pytest.fixture(scope="session")
def study(corpus) -> Study:
    """A Study wrapping the shared corpus."""
    return Study(corpus=corpus)


@pytest.fixture()
def ideal_curve():
    """The ideal proportional curve at the eleven measurement points."""
    from repro.metrics.ep import UTILIZATION_LEVELS

    levels = list(UTILIZATION_LEVELS)
    return levels, levels[:]
