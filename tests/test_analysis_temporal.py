"""Tests for the temporal analysis and the reorganization deltas."""

import pytest

from repro.analysis.stats import relative_change, summarize
from repro.analysis.temporal import (
    delta_range,
    ep_step_changes,
    mismatch_fraction,
    reorganization_deltas,
    yearly_trend,
)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.count == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_change(self):
        assert relative_change(2.0, 3.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_change(0.0, 1.0)


class TestYearlyTrend:
    def test_hw_basis_covers_2004_to_2016(self, corpus):
        trend = yearly_trend(corpus, "ep", "hw")
        assert trend.years() == list(range(2004, 2017))

    def test_published_basis_starts_2007(self, corpus):
        trend = yearly_trend(corpus, "ep", "published")
        assert trend.years()[0] >= 2007

    def test_counts_sum_to_corpus(self, corpus):
        trend = yearly_trend(corpus, "score", "hw")
        assert sum(s.count for s in trend.by_year.values()) == len(corpus)

    def test_series_alignment(self, corpus):
        trend = yearly_trend(corpus, "ep", "hw")
        avg = trend.series("avg")
        assert len(avg) == len(trend.years())
        assert avg[trend.years().index(2012)] == pytest.approx(
            trend.by_year[2012].mean
        )

    def test_unknown_metric_rejected(self, corpus):
        with pytest.raises(ValueError, match="unknown metric"):
            yearly_trend(corpus, "nope")

    def test_unknown_basis_rejected(self, corpus):
        with pytest.raises(ValueError, match="basis"):
            yearly_trend(corpus, "ep", basis="fiscal")

    def test_idle_fraction_trend_decreases(self, corpus):
        trend = yearly_trend(corpus, "idle_fraction", "hw")
        assert trend.by_year[2016].mean < trend.by_year[2008].mean


class TestStepChanges:
    def test_tock_jumps_positive(self, corpus):
        steps = ep_step_changes(corpus)
        assert steps["avg_2008_2009"] > 0.3
        assert steps["avg_2011_2012"] > 0.15


class TestReorganization:
    def test_mismatch_fraction(self, corpus):
        assert mismatch_fraction(corpus) == pytest.approx(74 / 477)

    def test_deltas_cover_overlapping_years_only(self, corpus):
        deltas = reorganization_deltas(corpus, "ep", "avg")
        years = [d.year for d in deltas]
        assert min(years) >= 2007
        assert max(years) <= 2016

    def test_reorganization_moves_the_statistics(self, corpus):
        low, high = delta_range(reorganization_deltas(corpus, "ep", "avg"))
        # The paper reports -6.2%..+8.7%; ours must be clearly nonzero
        # on both sides and of the same magnitude class.
        assert low < -0.005
        assert high > 0.005
        assert -0.20 < low and high < 0.20

    def test_ee_deltas_skew_positive(self, corpus):
        # Late publication makes published-year EE look better than the
        # hardware really was; re-indexing lifts the early years.
        low, high = delta_range(reorganization_deltas(corpus, "score", "avg"))
        assert high > abs(low)

    def test_empty_delta_range_rejected(self):
        with pytest.raises(ValueError):
            delta_range([])
