"""Tests for the tick/tock attribution analysis."""

import pytest

from repro.analysis.ticktock import (
    SERVER_LINEAGE,
    lineage_transitions,
    tick_tock_summary,
)
from repro.power.microarch import Codename


class TestLineage:
    def test_every_step_present_in_corpus(self, corpus):
        transitions = lineage_transitions(corpus)
        assert len(transitions) == len(SERVER_LINEAGE) - 1

    def test_kinds_alternate_mostly(self, corpus):
        transitions = lineage_transitions(corpus)
        kinds = [t.kind for t in transitions]
        assert "tick" in kinds and "tock" in kinds

    def test_named_tocks_have_the_biggest_gains(self, corpus):
        summary = tick_tock_summary(corpus)
        assert summary["named_tocks_are_largest"]

    def test_tocks_move_ep_more_than_ticks(self, corpus):
        """The paper's attribution of the 2009 and 2012 jumps."""
        summary = tick_tock_summary(corpus)
        assert summary["mean_tock_gain"] > summary["mean_tick_gain"]
        assert summary["mean_tock_gain"] > 0.05

    def test_penryn_to_nehalem_magnitude(self, corpus):
        transitions = {
            (t.predecessor, t.successor): t for t in lineage_transitions(corpus)
        }
        step = transitions[(Codename.PENRYN, Codename.NEHALEM_EP)]
        assert step.ep_change == pytest.approx(0.24, abs=0.06)
        assert step.kind == "tock"
