"""Unit tests for the microarchitecture catalog (Fig. 7 targets)."""

import pytest

from repro.power.microarch import (
    CATALOG,
    Codename,
    Family,
    Vendor,
    codenames,
    family_of,
    lookup,
)


class TestCatalogContents:
    def test_every_codename_has_a_record(self):
        for codename in Codename:
            assert codename in CATALOG

    def test_fig7_published_ep_means(self):
        # Exact values printed in the Fig. 7 legend.
        published = {
            Codename.NETBURST: 0.29,
            Codename.CORE: 0.30,
            Codename.PENRYN: 0.35,
            Codename.YORKFIELD: 0.43,
            Codename.NEHALEM_EX: 0.44,
            Codename.NEHALEM_EP: 0.59,
            Codename.WESTMERE: 0.54,
            Codename.WESTMERE_EP: 0.65,
            Codename.LYNNFIELD: 0.74,
            Codename.SANDY_BRIDGE: 0.75,
            Codename.SANDY_BRIDGE_EP: 0.84,
            Codename.SANDY_BRIDGE_EN: 0.90,
            Codename.IVY_BRIDGE: 0.71,
            Codename.IVY_BRIDGE_EP: 0.75,
            Codename.HASWELL: 0.81,
            Codename.BROADWELL: 0.87,
            Codename.SKYLAKE: 0.76,
            Codename.INTERLAGOS: 0.65,
            Codename.ABU_DHABI: 0.68,
            Codename.SEOUL: 0.62,
        }
        for codename, ep in published.items():
            assert CATALOG[codename].ep_mean == pytest.approx(ep)
            assert CATALOG[codename].ep_published

    def test_interpolated_records_are_flagged(self):
        for codename in (Codename.BARCELONA, Codename.ISTANBUL, Codename.MAGNY_COURS):
            assert not CATALOG[codename].ep_published

    def test_sandy_bridge_en_is_best_published(self):
        best = max(
            (m for m in CATALOG.values() if m.ep_published),
            key=lambda m: m.ep_mean,
        )
        assert best.codename is Codename.SANDY_BRIDGE_EN

    def test_ivy_bridge_regressed_from_sandy_bridge(self):
        # Section III.B: finer lithography did not always raise EP.
        assert CATALOG[Codename.IVY_BRIDGE].process_nm < CATALOG[
            Codename.SANDY_BRIDGE
        ].process_nm
        assert CATALOG[Codename.IVY_BRIDGE].ep_mean < CATALOG[
            Codename.SANDY_BRIDGE
        ].ep_mean

    def test_tocks_cover_the_two_ep_jumps(self):
        # Core->Nehalem (2008->2009) and Westmere->Sandy Bridge
        # (2011->2012) are the "tock" transitions the paper credits.
        assert CATALOG[Codename.NEHALEM_EP].is_tock
        assert CATALOG[Codename.SANDY_BRIDGE].is_tock


class TestLookups:
    def test_lookup_roundtrip(self):
        assert lookup(Codename.HASWELL).codename is Codename.HASWELL

    def test_family_of(self):
        assert family_of(Codename.BROADWELL) is Family.HASWELL
        assert family_of(Codename.WESTMERE) is Family.NEHALEM
        assert family_of(Codename.SEOUL) is Family.AMD

    def test_codenames_filter_by_vendor(self):
        amd = codenames(vendor=Vendor.AMD)
        assert Codename.INTERLAGOS in amd
        assert Codename.HASWELL not in amd

    def test_codenames_filter_by_family(self):
        core = codenames(family=Family.CORE)
        assert set(core) == {Codename.CORE, Codename.PENRYN, Codename.YORKFIELD}

    def test_years_are_ordered(self):
        for record in CATALOG.values():
            assert record.years[0] <= record.years[1]
