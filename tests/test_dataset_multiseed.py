"""Multi-seed robustness: the calibration shape must not be seed luck.

The default-seed corpus is exhaustively checked in
``test_dataset_synthesis.py``; these tests regenerate with different
seeds and re-assert the *structural* facts (exact counts stay exact,
statistical shapes stay within looser bands).
"""

import numpy as np
import pytest

from repro.dataset.synthesis import generate_corpus

SEEDS = (7, 99, 31415)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_corpus(request):
    return generate_corpus(seed=request.param)


class TestStructuralInvariants:
    def test_population_counts(self, seeded_corpus):
        assert len(seeded_corpus) == 477
        assert len(seeded_corpus.by_hw_year(2012)) == 131
        assert len(seeded_corpus.single_node()) == 403
        single = seeded_corpus.single_node()
        assert len(single.by_chips(2)) == 284

    def test_pinned_extremes(self, seeded_corpus):
        eps = np.array(seeded_corpus.eps())
        assert eps.min() == pytest.approx(0.18, abs=0.012)
        assert eps.max() == pytest.approx(1.05, abs=0.012)
        assert sum(1 for e in eps if e >= 1.0) == 2

    def test_spot_counting(self, seeded_corpus):
        assert sum(len(r.peak_ee_spots) for r in seeded_corpus) == 478

    def test_reorganized_count(self, seeded_corpus):
        mismatched = [
            r for r in seeded_corpus if r.published_year != r.hw_year
        ]
        assert len(mismatched) == 74


class TestStatisticalShape:
    def test_year_trend_band(self, seeded_corpus):
        avg = {
            year: float(np.mean(seeded_corpus.by_hw_year(year).eps()))
            for year in (2005, 2008, 2012, 2016)
        }
        assert avg[2005] == pytest.approx(0.30, abs=0.06)
        assert avg[2008] == pytest.approx(0.37, abs=0.05)
        assert avg[2012] == pytest.approx(0.82, abs=0.05)
        assert avg[2016] == pytest.approx(0.84, abs=0.05)

    def test_correlations_hold(self, seeded_corpus):
        from repro.metrics.correlation import pearson

        assert pearson(
            seeded_corpus.eps(), seeded_corpus.idle_fractions()
        ) == pytest.approx(-0.92, abs=0.06)
        assert pearson(
            seeded_corpus.eps(), seeded_corpus.scores()
        ) == pytest.approx(0.74, abs=0.12)

    def test_peak_spot_shares_hold(self, seeded_corpus):
        counts = {}
        for result in seeded_corpus:
            for spot in result.peak_ee_spots:
                counts[spot] = counts.get(spot, 0) + 1
        assert counts[1.0] / 477 == pytest.approx(0.6925, abs=0.02)
        assert counts[0.7] / 477 == pytest.approx(0.1381, abs=0.015)

    def test_chip_asymmetry_holds(self, seeded_corpus):
        single = seeded_corpus.single_node()
        avg = {
            chips: float(np.mean(single.by_chips(chips).eps()))
            for chips in (2, 4, 8)
        }
        assert avg[2] > avg[4] > avg[8]
