"""Tests for the content-addressed artifact cache."""

import pickle

import pytest

from repro.core.cache import ENGINE_VERSION, ArtifactCache, cache_key
from repro.core.registry import FIGURE_IDS
from repro.core.study import Study


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "store")


@pytest.fixture(scope="module")
def cached_study(corpus):
    return Study(corpus=corpus)


class TestKeying:
    def test_key_is_stable(self):
        assert cache_key("fp", "fig1") == cache_key("fp", "fig1")

    def test_key_varies_with_every_component(self):
        base = cache_key("fp", "fig1", "1")
        assert cache_key("other", "fig1", "1") != base
        assert cache_key("fp", "fig2", "1") != base
        assert cache_key("fp", "fig1", "2") != base

    def test_engine_version_partitions_store(self, tmp_path, cached_study):
        old = ArtifactCache(tmp_path, engine_version="old")
        new = ArtifactCache(tmp_path, engine_version="new")
        result = cached_study.figure("wong")
        old.put(cached_study.fingerprint, "wong", result)
        assert new.get(cached_study.fingerprint, "wong") is None
        assert old.get(cached_study.fingerprint, "wong") is not None


class TestWarmRuns:
    def test_warm_run_hits_for_every_artifact(self, cache, cached_study):
        cold = cached_study.run_all(jobs=2, cache=cache, report=True)
        assert cold.cache_hits == 0
        warm = cached_study.run_all(jobs=2, cache=cache, report=True)
        assert warm.cache_hits == len(FIGURE_IDS)
        assert warm.built == 0
        assert cache.stats.writes == len(FIGURE_IDS)

    def test_warm_results_equal_cold_results(
        self, cache, cached_study, series_equal
    ):
        cold = cached_study.run_all(cache=cache)
        warm = cached_study.run_all(cache=cache)
        for figure_id in FIGURE_IDS:
            assert warm[figure_id].text == cold[figure_id].text
            assert series_equal(warm[figure_id].series, cold[figure_id].series)

    def test_warm_run_skips_sweep_resources(self, cache, corpus, monkeypatch):
        study = Study(corpus=corpus)
        study.run_all(cache=cache)
        import repro.core.study as study_module

        def exploding(server):
            raise AssertionError("warm run must not recompute sweeps")

        monkeypatch.setattr(study_module, "run_sweep", exploding)
        warm_study = Study(corpus=corpus)
        report = warm_study.run_all(cache=cache, report=True)
        assert report.cache_hits == len(FIGURE_IDS)


class TestInvalidation:
    def test_different_seed_misses(self, cache):
        study_a = Study(seed=2016)
        study_b = Study(seed=7)
        assert study_a.fingerprint != study_b.fingerprint
        study_a.run_all(jobs=2, cache=cache)
        report = study_b.run_all(jobs=2, cache=cache, report=True)
        assert report.cache_hits == 0

    def test_same_content_hits_across_instances(self, cache, corpus):
        Study(corpus=corpus).run_all(cache=cache)
        report = Study(corpus=corpus).run_all(cache=cache, report=True)
        assert report.cache_hits == len(FIGURE_IDS)


class TestCorruptionRecovery:
    def test_corrupted_entry_falls_back_to_recompute(
        self, cache, cached_study, series_equal
    ):
        reference = cached_study.run_all(cache=cache)
        path = cache.path_for(cached_study.fingerprint, "fig3")
        path.write_bytes(b"not a pickle at all")
        results = cached_study.run_all(cache=cache, report=True)
        assert results.metrics["fig3"].cache_hit is False
        assert results.metrics["fig5"].cache_hit is True
        assert series_equal(results["fig3"].series, reference["fig3"].series)
        assert cache.stats.evictions >= 1

    def test_truncated_entry_is_a_miss(self, cache, cached_study):
        fingerprint = cached_study.fingerprint
        cache.put(fingerprint, "wong", cached_study.figure("wong"))
        path = cache.path_for(fingerprint, "wong")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(fingerprint, "wong") is None
        assert not path.exists()  # evicted

    def test_wrong_payload_type_is_a_miss(self, cache, cached_study):
        fingerprint = cached_study.fingerprint
        path = cache.path_for(fingerprint, "wong")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a FigureResult"}))
        assert cache.get(fingerprint, "wong") is None

    def test_mismatched_artifact_id_is_a_miss(self, cache, cached_study):
        fingerprint = cached_study.fingerprint
        other = cached_study.figure("fig1")
        path = cache.path_for(fingerprint, "wong")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(other))
        assert cache.get(fingerprint, "wong") is None


class TestMaintenance:
    def test_entries_and_clear(self, cache, cached_study):
        cached_study.run_all(cache=cache)
        assert len(cache.entries()) == len(FIGURE_IDS)
        assert cache.size_bytes() > 0
        assert cache.clear() == len(FIGURE_IDS)
        assert cache.entries() == []

    def test_stats_track_hits_and_misses(self, cache, cached_study):
        fingerprint = cached_study.fingerprint
        assert cache.get(fingerprint, "fig1") is None
        cache.put(fingerprint, "fig1", cached_study.figure("fig1"))
        assert cache.get(fingerprint, "fig1") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_default_engine_version_applied(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.engine_version == ENGINE_VERSION


class TestConcurrentAccess:
    def test_racing_get_put_corrupt_evict_never_raises(
        self, cache, cached_study
    ):
        """Readers, writers, a corruptor, and an evictor hammer one
        entry concurrently; every anomaly must degrade to a miss inside
        the cache — no exception may escape to the callers."""
        import threading

        result = cached_study.figure("wong")
        fingerprint = cached_study.fingerprint
        path = cache.path_for(fingerprint, "wong")
        cache.put(fingerprint, "wong", result)

        stop = threading.Event()
        escaped = []

        def hammer(action):
            while not stop.is_set():
                try:
                    action()
                except Exception as error:  # no exception may escape
                    escaped.append(error)
                    return

        def read():
            probe = cache.get(fingerprint, "wong")
            assert probe is None or probe.figure_id == "wong"

        def write():
            cache.put(fingerprint, "wong", result)

        def corrupt():
            try:
                path.write_bytes(b"garbage mid-flight")
            except OSError:
                pass

        def evict():
            cache.clear()

        workers = [
            threading.Thread(target=hammer, args=(action,))
            for action in (read, read, write, corrupt, evict)
        ]
        for worker in workers:
            worker.start()
        import time

        time.sleep(0.4)
        stop.set()
        for worker in workers:
            worker.join(timeout=10.0)
        assert escaped == []
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses
        # The store converges once the race stops.
        cache.put(fingerprint, "wong", result)
        final = cache.get(fingerprint, "wong")
        assert final is not None and final.figure_id == "wong"

    def test_corrupt_entry_rebuilds_exactly_once_under_parallelism(
        self, cache, cached_study
    ):
        """A corrupted entry costs one rebuild even with a wide pool:
        the scheduler probes once, evicts once, builds once."""
        cached_study.run_all(cache=cache)
        path = cache.path_for(cached_study.fingerprint, "fig3")
        path.write_bytes(b"not a pickle")
        evictions_before = cache.stats.evictions
        report = cached_study.run_all(cache=cache, jobs=4, report=True)
        assert report.built == 1
        assert report.metrics["fig3"].cache_hit is False
        assert cache.stats.evictions == evictions_before + 1
        # The rebuild restored the entry for the next run.
        assert cache.get(cached_study.fingerprint, "fig3") is not None
