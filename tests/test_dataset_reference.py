"""Bit-identity contract between the vectorized and reference kernels.

The corpus generator was vectorized under a strict contract: for any
seed, the optimized pipeline emits *exactly* the corpus the original
scalar kernels emitted.  :mod:`repro.dataset.reference` keeps those
original kernels alive; these tests hold the two pipelines to
field-for-field equality and pin the content fingerprints so an
accidental numeric drift (a reordered reduction, np.exp vs math.exp)
fails loudly instead of silently shifting every downstream statistic.
"""

import dataclasses

import pytest

from repro.dataset.reference import (
    generate_corpus_reference,
    reference_kernels,
    results_equal,
)
from repro.dataset.synthesis import generate_corpus

#: Content fingerprints the vectorized generator must keep emitting.
PINNED_FINGERPRINTS = {
    2016: "8b351d2ce9ca6e0732b6ccc8b1ba414920eb17c7916b32398d6b6fd0babff2a5",
    7: "3675fbc5dffa92d3c54c992a0c17c9855d3b1f3366edf6ae121ceef19b8e43ba",
}


@pytest.fixture(scope="module")
def corpus_seed7():
    return generate_corpus(seed=7)


class TestVectorizedEqualsReference:
    def test_default_seed_bit_identical(self, corpus):
        reference = generate_corpus_reference(seed=2016)
        assert len(reference) == len(corpus)
        for optimized, original in zip(corpus, reference):
            assert results_equal(optimized, original)

    def test_secondary_seed_bit_identical(self, corpus_seed7):
        reference = generate_corpus_reference(seed=7)
        assert len(reference) == len(corpus_seed7)
        for optimized, original in zip(corpus_seed7, reference):
            assert results_equal(optimized, original)

    def test_fingerprints_match_too(self, corpus):
        assert generate_corpus_reference(2016).fingerprint() == corpus.fingerprint()

    def test_swap_is_restored_after_context(self, corpus):
        import repro.dataset.synthesis as _syn

        live = _syn._noisy_levels
        with reference_kernels():
            assert _syn._noisy_levels is not live
        assert _syn._noisy_levels is live


class TestPinnedFingerprints:
    def test_default_seed_fingerprint(self, corpus):
        assert corpus.fingerprint() == PINNED_FINGERPRINTS[2016]

    def test_secondary_seed_fingerprint(self, corpus_seed7):
        assert corpus_seed7.fingerprint() == PINNED_FINGERPRINTS[7]


class TestResultsEqual:
    def test_detects_metadata_difference(self, corpus):
        record = list(corpus)[0]
        changed = dataclasses.replace(record, vendor="Other Vendor")
        assert results_equal(record, record)
        assert not results_equal(record, changed)

    def test_detects_level_difference(self, corpus):
        record = list(corpus)[0]
        levels = list(record.levels)
        levels[0] = dataclasses.replace(
            levels[0], average_power_w=levels[0].average_power_w + 1e-9
        )
        changed = dataclasses.replace(record, levels=tuple(levels))
        assert not results_equal(record, changed)
