"""Unit tests for the power-curve family and its solvers."""

import numpy as np
import pytest

from repro.dataset.curve_family import (
    CurveSolveError,
    GridCurve,
    PowerCurve,
    ep_of_linear_curve,
    minimum_idle_for_spot,
    solve_curve,
    solve_curve_with_fallback,
    solve_knee_curve,
)


class TestPowerCurve:
    def test_linear_member_ep_is_one_minus_idle(self):
        curve = PowerCurve.mix(idle=0.35, s=0.0, p=2.0)
        assert curve.ep() == pytest.approx(0.65)
        assert ep_of_linear_curve(0.35) == pytest.approx(0.65)

    def test_power_endpoints(self):
        curve = PowerCurve.mix(idle=0.2, s=0.5, p=3.0)
        assert curve.power(0.0) == pytest.approx(0.2)
        assert curve.power(1.0) == pytest.approx(1.0)

    def test_power_monotone(self):
        curve = PowerCurve.mix(idle=0.2, s=0.8, p=5.0)
        grid = curve.grid_power()
        assert np.all(np.diff(grid) >= 0.0)

    def test_convex_member_has_interior_peak(self):
        curve = PowerCurve.mix(idle=0.3, s=0.9, p=4.0)
        peak = curve.interior_peak()
        assert peak is not None
        assert 0.0 < peak < 1.0

    def test_concave_member_peaks_at_full_load(self):
        curve = PowerCurve.mix(idle=0.4, s=0.5, p=0.5)
        assert curve.interior_peak() is None
        assert curve.grid_peak_spots() == [1.0]

    def test_interior_peak_iff_crosses_ideal(self):
        for s, p in ((0.9, 4.0), (0.2, 2.0), (0.5, 0.5), (0.0, 2.0)):
            curve = PowerCurve.mix(idle=0.3, s=s, p=p)
            assert (curve.interior_peak() is not None) == curve.crosses_ideal()

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PowerCurve(idle=0.3, exponents=(1.0, 2.0), weights=(0.5, 0.6))

    def test_idle_bounds(self):
        with pytest.raises(ValueError):
            PowerCurve.mix(idle=0.0, s=0.5, p=2.0)


class TestSolveCurve:
    @pytest.mark.parametrize(
        "ep,idle,spot",
        [
            (0.18, 0.88, 1.0),
            (0.30, 0.70, 1.0),
            (0.55, 0.45, 1.0),
            (0.75, 0.28, 1.0),
            (0.84, 0.22, 1.0),
            (0.75, 0.30, 0.9),
            (0.82, 0.25, 0.8),
            (0.87, 0.20, 0.8),
            (0.84, 0.25, 0.7),
            (1.02, 0.12, 0.7),
            (1.05, 0.10, 0.7),
            (0.90, 0.20, 0.6),
        ],
    )
    def test_solves_the_corpus_range(self, ep, idle, spot):
        curve = solve_curve(ep, idle, spot)
        assert curve.ep() == pytest.approx(ep, abs=1e-6)
        assert curve.grid_peak_spots()[0] == pytest.approx(spot)

    def test_idle_is_preserved(self):
        curve = solve_curve(0.7, 0.35, 1.0)
        assert curve.grid_power()[0] == pytest.approx(0.35)

    def test_ep_beyond_idle_bound_rejected(self):
        # EP <= 2 * (1 - idle) for any monotone curve.
        with pytest.raises(CurveSolveError, match="unreachable"):
            solve_curve(0.9, 0.6, 1.0)

    def test_nonsense_ep_rejected(self):
        with pytest.raises(CurveSolveError):
            solve_curve(2.5, 0.3, 1.0)

    def test_peak_at_full_with_high_ep_needs_interior(self):
        # EP far above 1 - idle/2 cannot peak at 100%.
        with pytest.raises(CurveSolveError):
            solve_curve(0.95, 0.3, 1.0)


class TestKneeCurve:
    def test_low_ep_with_early_peak(self):
        # The combination the smooth family cannot reach.
        curve = solve_knee_curve(0.75, 0.25, 0.7)
        assert curve.ep() == pytest.approx(0.75, abs=1e-6)
        assert curve.grid_peak_spots() == [pytest.approx(0.7)]

    def test_knee_points_monotone(self):
        curve = solve_knee_curve(0.8, 0.3, 0.8)
        assert np.all(np.diff(curve.grid_power()) >= -1e-12)

    def test_margin_protects_the_spot(self):
        curve = solve_knee_curve(0.8, 0.3, 0.8, min_margin=0.01)
        rel = curve.ee_relative()[1:]
        ranked = np.sort(rel)[::-1]
        assert ranked[0] / ranked[1] >= 1.01 - 1e-9

    def test_interior_only(self):
        with pytest.raises(CurveSolveError, match="interior"):
            solve_knee_curve(0.7, 0.3, 1.0)

    def test_grid_curve_validation(self):
        with pytest.raises(ValueError, match="eleven"):
            GridCurve(points=(0.5, 1.0))


class TestFallback:
    def test_direct_solution_passes_through(self):
        curve = solve_curve_with_fallback(0.8, 0.25, 1.0)
        assert curve.ep() == pytest.approx(0.8, abs=1e-6)

    def test_high_idle_full_spot_shaves_idle_not_spot(self):
        # EP 0.4 with idle 0.76 escapes the smooth family; the fallback
        # must keep the 100% spot by reducing the idle fraction.
        curve = solve_curve_with_fallback(0.4, 0.76, 1.0)
        assert curve.ep() == pytest.approx(0.4, abs=1e-6)
        assert curve.grid_peak_spots()[0] == pytest.approx(1.0)

    def test_frontier_collapses_to_floor_when_knee_covers_it(self):
        # With the knee construction, EP 0.85 peaking at 70% works at
        # essentially any idle fraction.
        frontier = minimum_idle_for_spot(0.85, 0.7, idle_floor=0.02)
        assert frontier == pytest.approx(0.02)
        solve_curve(0.85, frontier, 0.7)

    def test_physically_impossible_combination_has_no_frontier(self):
        # A peak at 70% requires EE(70%) > EE(100%), which bounds the
        # area from above: EP below ~0.51 cannot peak at 70% at all.
        with pytest.raises(CurveSolveError):
            minimum_idle_for_spot(0.40, 0.7)
