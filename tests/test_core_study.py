"""Tests for the study pipeline: every registered artifact regenerates."""

import pytest

from repro.core.registry import FIGURE_IDS, REGISTRY
from repro.core.study import FigureResult, Study


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        for n in range(1, 22):
            assert f"fig{n}" in REGISTRY
        for extra in ("table1", "table2", "eq2", "reorg", "asynchrony",
                      "placement", "wong"):
            assert extra in REGISTRY

    def test_covers_the_extensions(self):
        for extra in ("gap", "metric_family", "forecast", "workloads",
                      "trace", "jobs", "procurement", "prior_work"):
            assert extra in REGISTRY

    def test_ids_are_ordered_and_unique(self):
        assert len(set(FIGURE_IDS)) == len(FIGURE_IDS) == 36


class TestStudy:
    @pytest.mark.parametrize("figure_id", FIGURE_IDS)
    def test_every_artifact_regenerates(self, study, figure_id):
        result = study.figure(figure_id)
        assert isinstance(result, FigureResult)
        assert result.figure_id == figure_id
        assert result.series
        assert result.text.strip()

    def test_unknown_artifact_rejected(self, study):
        with pytest.raises(KeyError):
            study.figure("fig99")

    def test_run_all_covers_registry(self, study):
        results = study.run_all()
        assert set(results) == set(FIGURE_IDS)

    def test_study_generates_corpus_when_not_given(self):
        study = Study(seed=7)
        assert len(study.corpus) == 477


class TestArtifactContent:
    def test_fig1_exemplar_properties(self, study):
        series = study.figure("fig1").series
        assert series["ep"] == pytest.approx(1.02, abs=0.01)
        assert series["score"] == pytest.approx(12212.0, rel=0.01)

    def test_fig3_step_changes_present(self, study):
        series = study.figure("fig3").series
        assert series["step_changes"]["avg_2008_2009"] > 0.3

    def test_fig5_landmarks(self, study):
        landmarks = study.figure("fig5").series["landmarks"]
        assert landmarks["share_below_1"] == pytest.approx(0.9958, abs=0.003)

    def test_fig9_envelope_eps(self, study):
        series = study.figure("fig9").series
        assert series["upper_ep"] < 0.35
        assert series["lower_ep"] > 0.95

    def test_fig16_reports_paper_comparisons(self, study):
        text = study.figure("fig16").text
        assert "478" in text
        assert "2010" in text

    def test_fig17_best_ratios(self, study):
        best = study.figure("fig17").series["best"]
        assert best["ep"] == pytest.approx(1.5)
        assert best["ee"] == pytest.approx(1.78)

    def test_fig18_to_20_best_memory(self, study):
        assert study.figure("fig18").series["best_memory_per_core"] == 1.75
        assert study.figure("fig19").series["best_memory_per_core"] == 4.0
        assert study.figure("fig20").series["best_memory_per_core"] == 2.67

    def test_table1_counts(self, study):
        series = study.figure("table1").series
        assert series["1"] == 153
        assert sum(series.values()) == 430

    def test_table2_lists_four_servers(self, study):
        assert len(study.figure("table2").series["rows"]) == 4

    def test_eq2_series(self, study):
        series = study.figure("eq2").series
        assert series["corr_ep_idle"] == pytest.approx(-0.92, abs=0.04)
        assert series["amplitude"] == pytest.approx(1.2969, abs=0.12)

    def test_placement_saves_power(self, study):
        series = study.figure("placement").series
        assert series["saving"] > 0.0

    def test_wong_shares(self, study):
        series = study.figure("wong").series
        assert series["share_100"] > 0.6
        assert series["share_60"] < 0.03
