"""Integration tests for calibration, metering, reports, and the runner."""

import numpy as np
import pytest

from repro.power.components import SATA_SSD
from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.governors import OndemandGovernor, PerformanceGovernor, PowersaveGovernor
from repro.power.memory import populate
from repro.power.server import ServerPowerModel
from repro.ssj.calibration import analytic_max_ops_per_s, calibrate
from repro.ssj.engine import LinearThroughputProfile
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.power_meter import PowerMeter
from repro.ssj.report import BenchmarkReport, LevelMeasurement
from repro.ssj.runner import SsjRunner

PROFILE = LinearThroughputProfile(ops_at_1ghz=400.0)


def _server():
    cpu = CpuPowerModel(
        tdp_w=85.0,
        cores=6,
        # Server-class narrow voltage band: the platform floor, not
        # voltage scaling, dominates -- see repro.hwexp.testbed.
        operating_points=default_voltage_curve(
            [1.2, 1.6, 2.0, 2.4], v_min=1.05, v_max=1.25
        ),
        static_fraction=0.25,
    )
    return ServerPowerModel(
        cpus=[cpu, cpu], memory=populate(64, "DDR4"), disks=[SATA_SSD]
    )


QUICK_PLAN = MeasurementPlan(interval_s=3.0, ramp_s=0.5)


class TestCalibration:
    def test_analytic_capacity(self):
        assert analytic_max_ops_per_s(8, PROFILE, 2.0) == pytest.approx(6400.0)

    def test_measured_close_to_analytic(self):
        result = calibrate(
            cores=8, profile=PROFILE, frequency_ghz=2.0,
            rng=np.random.default_rng(1),
        )
        assert result.max_ops_per_s == pytest.approx(
            result.analytic_max_ops_per_s, rel=0.08
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate(cores=4, profile=PROFILE, frequency_ghz=2.0,
                      rng=np.random.default_rng(1), interval_s=0.0)


class TestPowerMeter:
    def test_constant_signal_measured_exactly_without_noise(self):
        meter = PowerMeter(rng=np.random.default_rng(1), noise_fraction=0.0)
        assert meter.measure(lambda t: 150.0, 0.0, 10.0) == pytest.approx(150.0)

    def test_noise_stays_small(self):
        meter = PowerMeter(rng=np.random.default_rng(2), noise_fraction=0.005)
        reading = meter.measure(lambda t: 200.0, 0.0, 100.0)
        assert reading == pytest.approx(200.0, rel=0.01)

    def test_time_varying_signal_averaged(self):
        meter = PowerMeter(rng=np.random.default_rng(3), noise_fraction=0.0,
                           sample_period_s=0.01)
        reading = meter.measure(lambda t: 100.0 + 10.0 * (t >= 5.0), 0.0, 10.0)
        assert reading == pytest.approx(105.0, rel=0.01)

    def test_negative_power_rejected(self):
        meter = PowerMeter(rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            meter.measure(lambda t: -1.0, 0.0, 5.0)


class TestReport:
    def _report(self):
        levels = [
            LevelMeasurement(
                target_load=u,
                throughput_ops_per_s=1000.0 * u,
                average_power_w=100.0 * (0.3 + 0.7 * u),
                utilization=u,
            )
            for u in [round(0.1 * i, 1) for i in range(1, 11)]
        ]
        return BenchmarkReport(
            calibrated_max_ops_per_s=1000.0,
            levels=levels,
            active_idle_power_w=30.0,
        )

    def test_linear_report_ep(self):
        assert self._report().energy_proportionality() == pytest.approx(0.7, abs=1e-9)

    def test_overall_score_formula(self):
        report = self._report()
        expected = sum(report.throughputs()) / (sum(report.powers()) + 30.0)
        assert report.overall_score() == pytest.approx(expected)

    def test_peak_spot_of_linear_report_is_full_load(self):
        assert self._report().peak_efficiency_spots() == [1.0]

    def test_text_rendering_mentions_score(self):
        text = self._report().to_text()
        assert "overall score" in text
        assert "100%" in text

    def test_curve_includes_idle(self):
        loads, powers = self._report().curve()
        assert loads[0] == 0.0
        assert powers[0] == pytest.approx(30.0)


class TestRunner:
    def test_full_run_produces_all_levels(self):
        runner = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN)
        report = runner.run()
        assert len(report.levels) == 10
        assert report.active_idle_power_w > 0.0

    def test_throughput_tracks_target_loads(self):
        runner = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN)
        report = runner.run()
        for level in report.levels:
            expected = level.target_load * report.calibrated_max_ops_per_s
            assert level.throughput_ops_per_s == pytest.approx(expected, rel=0.25)

    def test_power_monotone_in_load(self):
        runner = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN)
        report = runner.run()
        ordered = sorted(report.levels, key=lambda l: l.target_load)
        powers = [l.average_power_w for l in ordered]
        # Allow small metering noise between adjacent levels.
        for a, b in zip(powers, powers[1:]):
            assert b > a * 0.93

    def test_deterministic_given_seed(self):
        a = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN, seed=7).run()
        b = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN, seed=7).run()
        assert a.overall_score() == pytest.approx(b.overall_score())
        assert a.powers() == b.powers()

    def test_powersave_draws_less_but_scores_worse(self):
        fast = SsjRunner(server=_server(), profile=PROFILE,
                         governor=PerformanceGovernor(), plan=QUICK_PLAN).run()
        slow = SsjRunner(server=_server(), profile=PROFILE,
                         governor=PowersaveGovernor(), plan=QUICK_PLAN).run()
        assert max(slow.powers()) < max(fast.powers())
        assert slow.overall_score() < fast.overall_score()

    def test_ondemand_idles_cheaper_than_performance(self):
        fast = SsjRunner(server=_server(), profile=PROFILE,
                         governor=PerformanceGovernor(), plan=QUICK_PLAN).run()
        ondemand = SsjRunner(server=_server(), profile=PROFILE,
                             governor=OndemandGovernor(), plan=QUICK_PLAN).run()
        assert ondemand.active_idle_power_w < fast.active_idle_power_w

    def test_report_ep_in_physical_range(self):
        report = SsjRunner(server=_server(), profile=PROFILE, plan=QUICK_PLAN).run()
        assert 0.0 < report.energy_proportionality() < 2.0
