"""Tests for the proportionality-gap metric and its corpus analysis."""

import numpy as np
import pytest

from repro.analysis.gap import gap_trend, low_band_lag, mean_gap_profile
from repro.metrics.ep import UTILIZATION_LEVELS
from repro.metrics.gap import (
    gap_at,
    low_utilization_gap,
    peak_gap,
    proportionality_gap,
)

LEVELS = list(UTILIZATION_LEVELS)


class TestGapMetric:
    def test_ideal_server_has_zero_gap(self):
        gaps = proportionality_gap(LEVELS, [max(u, 1e-9) for u in LEVELS])
        assert np.allclose(gaps, 0.0, atol=1e-8)

    def test_constant_power_gap_is_one_minus_u(self):
        gaps = proportionality_gap(LEVELS, [100.0] * 11)
        assert np.allclose(gaps, [1.0 - u for u in LEVELS])

    def test_linear_server_gap_shrinks_with_load(self):
        powers = [0.4 + 0.6 * u for u in LEVELS]
        gaps = proportionality_gap(LEVELS, powers)
        assert np.all(np.diff(gaps) <= 1e-12)
        assert gaps[0] == pytest.approx(0.4)
        assert gaps[-1] == pytest.approx(0.0)

    def test_gap_at_interpolates(self):
        powers = [0.4 + 0.6 * u for u in LEVELS]
        assert gap_at(LEVELS, powers, 0.25) == pytest.approx(0.4 * 0.75)

    def test_peak_gap_location(self):
        powers = [0.4 + 0.6 * u for u in LEVELS]
        location, value = peak_gap(LEVELS, powers)
        assert location == pytest.approx(0.0)
        assert value == pytest.approx(0.4)

    def test_low_band_average(self):
        powers = [0.5 + 0.5 * u for u in LEVELS]
        expected = np.mean([0.5 * (1 - u) for u in (0.1, 0.2, 0.3)])
        assert low_utilization_gap(LEVELS, powers) == pytest.approx(expected)

    def test_band_validation(self):
        with pytest.raises(ValueError):
            low_utilization_gap(LEVELS, [1.0] * 11, band=(0.5, 0.2))


class TestGapAnalysis:
    def test_gap_trend_improves_over_the_decade(self, corpus):
        trend = gap_trend(corpus)
        by_year = dict(zip(trend.years, trend.low_band_gap))
        assert by_year[2016] < by_year[2008] * 0.5

    def test_profile_largest_at_low_utilization(self, corpus):
        profile = mean_gap_profile(corpus)
        low = np.mean([profile[0.1], profile[0.2]])
        high = np.mean([profile[0.8], profile[0.9]])
        assert low > 2 * high

    def test_wong_claim_low_band_lags_even_on_modern_servers(self, corpus):
        """Related work: good scalar EP, yet a big low-utilization gap."""
        lag = low_band_lag(corpus)
        assert lag["modern_avg_ep"] > 0.7
        assert lag["low_minus_mid"] > 0.1
        assert lag["low_band_gap"] > 0.15

    def test_trend_arrays_aligned(self, corpus):
        trend = gap_trend(corpus)
        assert (
            len(trend.years)
            == len(trend.mean_gap)
            == len(trend.low_band_gap)
            == len(trend.peak_gap_location)
        )
