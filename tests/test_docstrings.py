"""Documentation enforcement: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        modules.append(info.name)
    return sorted(modules)


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (item.__doc__ and item.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"
