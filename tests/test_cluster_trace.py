"""Tests for the trace-driven placement simulation."""

import numpy as np
import pytest

from repro.cluster.trace import (
    DemandTrace,
    compare_policies,
    daily_saving,
    diurnal_trace,
    replay_trace,
)


@pytest.fixture(scope="module")
def fleet(corpus):
    return list(corpus.by_hw_year_range(2014, 2016))


class TestDiurnalTrace:
    def test_shape_parameters(self):
        trace = diurnal_trace(steps_per_day=48, base=0.2, peak=0.9, seed=0)
        assert trace.steps == 48
        assert min(trace.demand_fraction) >= 0.0
        assert max(trace.demand_fraction) <= 1.0
        assert max(trace.demand_fraction) > 0.75
        assert min(trace.demand_fraction) < 0.35

    def test_peak_lands_in_the_afternoon(self):
        trace = diurnal_trace(noise=0.0)
        peak_index = int(np.argmax(trace.demand_fraction))
        assert 12.0 <= trace.times_h[peak_index] <= 17.0

    def test_deterministic_with_seeded_rng(self):
        a = diurnal_trace(rng=np.random.default_rng(5))
        b = diurnal_trace(rng=np.random.default_rng(5))
        assert a.demand_fraction == b.demand_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(base=0.9, peak=0.5)
        with pytest.raises(ValueError):
            DemandTrace(times_h=(0.0,), demand_fraction=(1.5,))

    def test_noise_requires_explicit_randomness_source(self):
        with pytest.raises(ValueError, match="seed= or rng="):
            diurnal_trace()  # default noise > 0 with no source
        with pytest.raises(ValueError, match="at most one"):
            diurnal_trace(seed=1, rng=np.random.default_rng(1))
        # noise=0.0 is deterministic and needs neither.
        diurnal_trace(noise=0.0)

    def test_seed_matches_equivalent_rng(self):
        a = diurnal_trace(seed=7)
        b = diurnal_trace(rng=np.random.default_rng(7))
        assert a.demand_fraction == b.demand_fraction

    @pytest.mark.parametrize("steps", [24, 96, 288])
    def test_vectorized_matches_scalar_reference_bitwise(self, steps):
        from repro.cluster.reference import reference_kernels

        vectorized = diurnal_trace(steps_per_day=steps, noise=0.0)
        with reference_kernels():
            scalar = diurnal_trace(steps_per_day=steps, noise=0.0)
        assert vectorized == scalar

    def test_vectorized_matches_scalar_reference_with_noise(self):
        from repro.cluster.reference import reference_kernels

        vectorized = diurnal_trace(seed=7)
        with reference_kernels():
            scalar = diurnal_trace(seed=7)
        assert vectorized == scalar

    def test_reference_swap_restores_on_exit(self):
        from repro.cluster import trace as trace_module
        from repro.cluster.reference import reference_kernels

        original = trace_module.diurnal_trace
        with reference_kernels():
            assert trace_module.diurnal_trace is not original
        assert trace_module.diurnal_trace is original

    def test_times_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DemandTrace(times_h=(0.0, 1.0, 1.0), demand_fraction=(0.1,) * 3)
        with pytest.raises(ValueError, match="strictly increasing"):
            DemandTrace(times_h=(2.0, 1.0), demand_fraction=(0.1, 0.2))


class TestReplay:
    def test_energy_and_service_accounting(self, fleet):
        trace = diurnal_trace(steps_per_day=12, noise=0.0)
        outcome = replay_trace(fleet, trace, "ep-aware")
        assert outcome.energy_kwh > 0.0
        assert outcome.served_gops > 0.0
        assert outcome.unserved_steps == 0
        assert outcome.step_hours == pytest.approx(2.0)

    def test_ep_aware_wins_the_day(self, fleet):
        """Section V.C over a full diurnal cycle."""
        trace = diurnal_trace(steps_per_day=12, noise=0.0)
        outcomes = compare_policies(fleet, trace)
        saving = daily_saving(outcomes)
        assert saving > 0.01
        # Both served the same demand.
        assert outcomes["ep-aware"].served_gops == pytest.approx(
            outcomes["pack-to-full"].served_gops, rel=1e-6
        )

    def test_energy_per_gop_ranks_policies(self, fleet):
        trace = diurnal_trace(steps_per_day=12, noise=0.0)
        outcomes = compare_policies(fleet, trace)
        assert (
            outcomes["ep-aware"].energy_per_gop
            < outcomes["pack-to-full"].energy_per_gop
        )

    def test_power_off_mode_uses_less_energy(self, fleet):
        trace = diurnal_trace(steps_per_day=8, noise=0.0)
        powered = replay_trace(fleet, trace, "pack-to-full",
                               power_off_unused=False)
        consolidated = replay_trace(fleet, trace, "pack-to-full",
                                    power_off_unused=True)
        assert consolidated.energy_kwh < powered.energy_kwh

    def test_unknown_policy_rejected(self, fleet):
        with pytest.raises(ValueError, match="policy"):
            replay_trace(fleet, diurnal_trace(steps_per_day=8, noise=0.0), "magic")
