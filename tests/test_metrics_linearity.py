"""Unit tests for the companion proportionality metrics (IPR, LD, ER)."""

import pytest

from repro.metrics.ep import UTILIZATION_LEVELS, energy_proportionality
from repro.metrics.linearity import (
    energy_ratio,
    idle_to_peak_ratio,
    linear_deviation,
)

LEVELS = list(UTILIZATION_LEVELS)


class TestIdleToPeakRatio:
    def test_linear_curve(self):
        powers = [0.35 + 0.65 * u for u in LEVELS]
        assert idle_to_peak_ratio(LEVELS, powers) == pytest.approx(0.35)

    def test_ideal_server_has_zero_ipr(self):
        powers = [max(u, 1e-9) for u in LEVELS]
        assert idle_to_peak_ratio(LEVELS, powers) == pytest.approx(0.0, abs=1e-8)

    def test_requires_idle_point(self):
        with pytest.raises(ValueError, match="active-idle"):
            idle_to_peak_ratio(LEVELS[1:], [1.0] * 10)


class TestLinearDeviation:
    def test_linear_curve_has_zero_ld(self):
        powers = [0.35 + 0.65 * u for u in LEVELS]
        assert linear_deviation(LEVELS, powers) == pytest.approx(0.0, abs=1e-12)

    def test_early_spender_has_positive_ld(self):
        powers = [0.3 + 0.7 * u**0.5 for u in LEVELS]
        assert linear_deviation(LEVELS, powers) > 0.0

    def test_deferrer_has_negative_ld(self):
        powers = [0.3 + 0.7 * u**3 for u in LEVELS]
        assert linear_deviation(LEVELS, powers) < 0.0

    def test_equal_ep_different_ld(self):
        # The Section III.C observation: same EP, different shape.
        concave = [0.42 + 0.58 * u**0.8 for u in LEVELS]
        ep = energy_proportionality(LEVELS, concave)
        # Build a linear curve with the same EP (EP = 1 - idle).
        idle = 1.0 - ep
        linear = [idle + (1 - idle) * u for u in LEVELS]
        assert energy_proportionality(LEVELS, linear) == pytest.approx(ep, abs=1e-9)
        assert linear_deviation(LEVELS, concave) != pytest.approx(
            linear_deviation(LEVELS, linear), abs=1e-6
        )


class TestEnergyRatio:
    def test_ideal_server_scores_one(self):
        powers = [max(u, 1e-9) for u in LEVELS]
        assert energy_ratio(LEVELS, powers) == pytest.approx(1.0, rel=1e-6)

    def test_constant_power_scores_half(self):
        assert energy_ratio(LEVELS, [5.0] * 11) == pytest.approx(0.5)

    def test_monotone_transform_of_ep(self):
        # ER and EP must rank any pair of servers identically.
        a = [0.5 + 0.5 * u for u in LEVELS]
        b = [0.2 + 0.8 * u for u in LEVELS]
        assert energy_proportionality(LEVELS, b) > energy_proportionality(LEVELS, a)
        assert energy_ratio(LEVELS, b) > energy_ratio(LEVELS, a)
