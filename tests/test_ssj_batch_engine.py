"""Tests for the batched service engine and array arrival generation.

The batch engine replaces the per-event heapq loop with chunked
per-window processing.  It consumes the RNG in a different order than
:class:`~repro.ssj.engine.ServiceEngine`, so the contract is
*distributional* equivalence plus per-seed determinism, not bit
identity with the event engine.
"""

import numpy as np
import pytest

from repro.hwexp.sweeps import run_sweep
from repro.hwexp.testbed import TESTBED
from repro.ssj.engine import (
    OPS_PER_UNIT_WORK,
    BatchServiceEngine,
    LinearThroughputProfile,
    ServiceEngine,
)
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.workload import TransactionSource


def _engine(cores=4, rate=100.0, seed=1, capacity=None):
    return BatchServiceEngine(
        cores=cores,
        profile=LinearThroughputProfile(ops_at_1ghz=rate),
        rng=np.random.default_rng(seed),
        queue_capacity=capacity,
    )


def _source(rate, seed=2):
    return TransactionSource(rate_per_s=rate, rng=np.random.default_rng(seed))


class TestArrivalArrays:
    def test_offsets_sorted_and_inside_horizon(self):
        offsets, factors = _source(rate=200.0).arrival_arrays(10.0)
        assert offsets.shape == factors.shape
        assert np.all(np.diff(offsets) >= 0.0)
        assert np.all(offsets < 10.0)
        assert np.all(offsets > 0.0)

    def test_count_tracks_rate(self):
        counts = [
            _source(rate=300.0, seed=seed).arrival_arrays(20.0)[0].size
            for seed in range(8)
        ]
        assert np.mean(counts) == pytest.approx(300.0 * 20.0, rel=0.05)

    def test_same_seed_same_arrays(self):
        first = _source(rate=150.0, seed=11).arrival_arrays(6.0)
        second = _source(rate=150.0, seed=11).arrival_arrays(6.0)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_mean_gap_matches_scalar_generator(self):
        """Array and scalar paths draw from the same arrival process."""
        scalar_counts = [
            len(list(_source(rate=250.0, seed=seed).arrivals(12.0)))
            for seed in range(6)
        ]
        array_counts = [
            _source(rate=250.0, seed=seed).arrival_arrays(12.0)[0].size
            for seed in range(6)
        ]
        assert np.mean(array_counts) == pytest.approx(
            np.mean(scalar_counts), rel=0.05
        )

    def test_work_factors_come_from_the_mix(self):
        source = _source(rate=500.0)
        _, factors = source.arrival_arrays(5.0)
        allowed = {tx.work_factor for tx in source.mix}
        assert set(np.unique(factors)) <= allowed

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            _source(rate=10.0).arrival_arrays(0.0)


class TestBatchEngineBasics:
    def test_no_arrivals_means_no_work(self):
        engine = _engine()
        result = engine.advance([], [], until=10.0, frequency_ghz=2.0)
        assert result.completed_transactions == 0
        assert result.utilization == pytest.approx(0.0)
        assert engine.clock == pytest.approx(10.0)

    def test_cannot_go_backwards(self):
        engine = _engine()
        engine.advance([], [], until=5.0, frequency_ghz=2.0)
        with pytest.raises(ValueError, match="backwards"):
            engine.advance([], [], until=4.0, frequency_ghz=2.0)

    def test_arrival_outside_window_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="outside"):
            engine.advance([10.0], [1.0], until=5.0, frequency_ghz=2.0)

    def test_light_load_completes_everything(self):
        engine = _engine(cores=8, rate=1000.0)
        offsets, factors = _source(rate=20.0).arrival_arrays(50.0)
        result = engine.advance(offsets, factors, until=60.0, frequency_ghz=2.0)
        assert result.completed_transactions == offsets.size

    def test_ops_track_transaction_work(self):
        engine = _engine(cores=8, rate=1000.0)
        offsets, factors = _source(rate=20.0).arrival_arrays(50.0)
        result = engine.advance(offsets, factors, until=80.0, frequency_ghz=2.0)
        expected = float(np.sum(factors)) * OPS_PER_UNIT_WORK
        assert result.completed_ops == pytest.approx(expected, rel=1e-9)

    def test_same_seed_same_result(self):
        runs = []
        for _ in range(2):
            engine = _engine(cores=8, rate=500.0, seed=42)
            offsets, factors = _source(rate=400.0, seed=9).arrival_arrays(30.0)
            result = engine.advance(offsets, factors, 30.0, frequency_ghz=2.0)
            runs.append(
                (result.completed_transactions, result.completed_ops,
                 result.busy_core_seconds)
            )
        assert runs[0] == runs[1]


class TestBatchQueueBehaviour:
    def test_bounded_queue_drops_excess(self):
        engine = _engine(cores=1, rate=1.0, capacity=2)
        offsets, factors = _source(rate=100.0).arrival_arrays(5.0)
        engine.advance(offsets, factors, 5.0, frequency_ghz=1.0)
        assert engine.dropped > 0

    def test_unbounded_queue_never_drops(self):
        engine = _engine(cores=1, rate=1.0, capacity=None)
        offsets, factors = _source(rate=100.0).arrival_arrays(5.0)
        engine.advance(offsets, factors, 5.0, frequency_ghz=1.0)
        assert engine.dropped == 0

    def test_pending_carries_across_windows(self):
        engine = _engine(cores=1, rate=100.0)
        offsets, factors = _source(rate=100.0).arrival_arrays(2.0)
        engine.advance(offsets, factors, 2.0, frequency_ghz=1.0)
        assert engine.pending > 0
        later = engine.advance([], [], 2000.0, frequency_ghz=1.0)
        assert engine.pending == 0
        assert later.completed_transactions > 0


class TestDistributionalAgreementWithEventEngine:
    def test_mean_utilization_matches_event_engine(self):
        """Across seeds, both engines deliver the same offered load."""
        cores, rate, f = 16, 500.0, 2.0
        capacity_ops = cores * rate * f
        offered_tx = 0.5 * capacity_ops / OPS_PER_UNIT_WORK
        horizon = 60.0
        event_utils, batch_utils = [], []
        for seed in range(5):
            arrivals = list(
                _source(rate=offered_tx, seed=seed).arrivals(horizon)
            )
            event = ServiceEngine(
                cores=cores,
                profile=LinearThroughputProfile(ops_at_1ghz=rate),
                rng=np.random.default_rng(seed + 100),
            )
            event_utils.append(
                event.advance(arrivals, horizon, f).utilization
            )
            offsets, factors = _source(
                rate=offered_tx, seed=seed
            ).arrival_arrays(horizon)
            batch = _engine(cores=cores, rate=rate, seed=seed + 100)
            batch_utils.append(
                batch.advance(offsets, factors, horizon, f).utilization
            )
        assert np.mean(batch_utils) == pytest.approx(
            np.mean(event_utils), abs=0.02
        )
        assert np.mean(batch_utils) == pytest.approx(0.5, abs=0.03)


class TestSimulatedSweepAgreement:
    @pytest.fixture(scope="class")
    def plan(self):
        return MeasurementPlan(interval_s=3.0, ramp_s=0.5)

    def test_simulate_agrees_with_analytic_across_cells(self, plan):
        """Tentpole check: the batched simulate path still reproduces the
        analytic sweep within measurement tolerance on a testbed server.

        The widest gap sits at the lowest frequency pin, where the
        server runs saturated and the analytic capacity model and the
        queueing simulation legitimately diverge the most, so the
        efficiency tolerance is looser than the 1.8 GHz one-cell check
        in test_hwexp.py.
        """
        server = TESTBED[2]
        kwargs = dict(
            memory_per_core=[2.0, 4.0],
            frequencies=[1.2, 1.8],
            include_ondemand=False,
        )
        analytic = run_sweep(server, **kwargs)
        simulated = run_sweep(server, method="simulate", plan=plan, **kwargs)
        for mpc in (2.0, 4.0):
            for frequency in (1.2, 1.8):
                a = analytic.cell(mpc, frequency)
                s = simulated.cell(mpc, frequency)
                assert s.overall_efficiency == pytest.approx(
                    a.overall_efficiency, rel=0.20
                )
                assert s.peak_power_w == pytest.approx(
                    a.peak_power_w, rel=0.10
                )

    def test_simulated_sweep_is_seed_stable(self, plan):
        """Same seed, same report -- twice; a different seed moves it."""
        kwargs = dict(
            memory_per_core=[4.0],
            frequencies=[1.8],
            include_ondemand=False,
            method="simulate",
            plan=plan,
        )
        first = run_sweep(TESTBED[2], seed=123, **kwargs)
        second = run_sweep(TESTBED[2], seed=123, **kwargs)
        assert [
            (c.overall_efficiency, c.peak_power_w) for c in first.cells
        ] == [(c.overall_efficiency, c.peak_power_w) for c in second.cells]
        other = run_sweep(TESTBED[2], seed=124, **kwargs)
        assert [
            (c.overall_efficiency, c.peak_power_w) for c in first.cells
        ] != [(c.overall_efficiency, c.peak_power_w) for c in other.cells]
