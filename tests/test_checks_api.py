"""The REP21x dispatch rules: fixtures with violations, clean source."""

from pathlib import Path

from repro.checks.engine import RULES, run_checks
from repro.checks.model import Severity

FIXTURES = Path(__file__).parent / "fixtures" / "checks"
SRC = Path(__file__).parent.parent / "src"


class TestCatalog:
    def test_rules_registered_as_errors(self):
        for rule_id in ("REP211", "REP212"):
            assert rule_id in RULES
            assert RULES[rule_id].severity is Severity.ERROR


class TestRep211:
    def test_exact_findings_on_the_fixture_tree(self):
        findings = run_checks(
            [str(FIXTURES / "api_tree")], select=["REP211"]
        )
        messages = [f.message for f in findings]
        assert len(findings) == 5
        assert any("reuses family tag 'dup'" in m for m in messages)
        assert any(
            "UnfrozenQuery is not a frozen dataclass" in m for m in messages
        )
        assert any(
            "OrphanQuery has no @handler registration" in m for m in messages
        )
        assert any(
            "MissingCatalogQuery is missing from REQUEST_TYPES" in m
            for m in messages
        )
        assert any(
            "NoTagQuery declares no literal 'family' tag" in m
            for m in messages
        )

    def test_gated_off_without_both_api_modules(self):
        findings = run_checks(
            [str(FIXTURES / "api_tree" / "repro" / "api" / "requests.py")],
            select=["REP211"],
        )
        assert findings == []

    def test_real_api_package_is_clean(self):
        assert run_checks([str(SRC)], select=["REP211"]) == []


class TestRep212:
    def test_rogue_cli_command_is_flagged(self):
        findings = run_checks(
            [str(FIXTURES / "api_violations.py")], select=["REP212"]
        )
        assert [f.rule_id for f in findings] == ["REP212"]
        assert "_cmd_rogue_list" in findings[0].message

    def test_routed_command_and_plain_helpers_are_clean(self):
        findings = run_checks(
            [str(FIXTURES / "api_violations.py")], select=["REP212"]
        )
        messages = " ".join(f.message for f in findings)
        assert "_cmd_routed_list" not in messages
        assert "helper_without_prefix" not in messages

    def test_real_cli_is_clean(self):
        assert run_checks([str(SRC)], select=["REP212"]) == []
