"""Unit tests for transactions, the Poisson source, and the plan."""

import numpy as np
import pytest

from repro.ssj.load_levels import FULL_FIDELITY_PLAN, MeasurementPlan
from repro.ssj.transactions import (
    SSJ_MIX,
    TransactionType,
    mean_work_factor,
    validate_mix,
)
from repro.ssj.workload import TransactionSource


class TestTransactionMix:
    def test_weights_sum_to_one(self):
        assert sum(t.mix_weight for t in SSJ_MIX) == pytest.approx(1.0)

    def test_six_transaction_types(self):
        names = {t.name for t in SSJ_MIX}
        assert names == {
            "NewOrder", "Payment", "OrderStatus",
            "Delivery", "StockLevel", "CustomerReport",
        }

    def test_normalized_mix_has_unit_mean_work(self):
        normalized = validate_mix(SSJ_MIX)
        assert mean_work_factor(normalized) == pytest.approx(1.0)

    def test_new_order_and_payment_dominate(self):
        by_name = {t.name: t for t in SSJ_MIX}
        minor = [t.mix_weight for t in SSJ_MIX
                 if t.name not in ("NewOrder", "Payment")]
        assert by_name["NewOrder"].mix_weight > max(minor)

    def test_bad_weights_rejected(self):
        bad = (TransactionType("A", 0.5, 1.0), TransactionType("B", 0.4, 1.0))
        with pytest.raises(ValueError, match="sum to 1"):
            validate_mix(bad)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            validate_mix(())

    def test_type_validation(self):
        with pytest.raises(ValueError):
            TransactionType("A", 0.0, 1.0)
        with pytest.raises(ValueError):
            TransactionType("A", 0.5, -1.0)


class TestTransactionSource:
    def test_arrival_count_matches_rate(self):
        source = TransactionSource(rate_per_s=50.0, rng=np.random.default_rng(1))
        arrivals = list(source.arrivals(200.0))
        assert len(arrivals) == pytest.approx(10000, rel=0.05)

    def test_arrivals_ordered_and_in_horizon(self):
        source = TransactionSource(rate_per_s=20.0, rng=np.random.default_rng(2))
        times = [t for t, _ in source.arrivals(30.0)]
        assert times == sorted(times)
        assert all(0.0 < t < 30.0 for t in times)

    def test_mix_frequencies_respected(self):
        source = TransactionSource(rate_per_s=200.0, rng=np.random.default_rng(3))
        counts = {}
        for _, tx in source.arrivals(200.0):
            counts[tx.name] = counts.get(tx.name, 0) + 1
        total = sum(counts.values())
        for tx in SSJ_MIX:
            assert counts[tx.name] / total == pytest.approx(tx.mix_weight, abs=0.02)

    def test_interarrival_times_look_exponential(self):
        source = TransactionSource(rate_per_s=100.0, rng=np.random.default_rng(4))
        times = np.array([t for t, _ in source.arrivals(300.0)])
        gaps = np.diff(times)
        # Exponential: mean ~ std.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.1)

    def test_deterministic_given_seed(self):
        a = TransactionSource(rate_per_s=10.0, rng=np.random.default_rng(9))
        b = TransactionSource(rate_per_s=10.0, rng=np.random.default_rng(9))
        assert [t for t, _ in a.arrivals(20.0)] == [t for t, _ in b.arrivals(20.0)]

    def test_expected_count(self):
        source = TransactionSource(rate_per_s=10.0, rng=np.random.default_rng(5))
        assert source.expected_count(3.0) == pytest.approx(30.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TransactionSource(rate_per_s=0.0, rng=np.random.default_rng(6))


class TestMeasurementPlan:
    def test_default_covers_all_ten_loads_descending(self):
        plan = MeasurementPlan()
        assert plan.levels == 10
        assert plan.target_loads[0] == 1.0
        assert list(plan.target_loads) == sorted(plan.target_loads, reverse=True)

    def test_full_fidelity_uses_real_intervals(self):
        assert FULL_FIDELITY_PLAN.interval_s == 240.0
        assert FULL_FIDELITY_PLAN.ramp_s == 30.0

    def test_with_intervals_copies(self):
        quick = MeasurementPlan().with_intervals(2.0)
        assert quick.interval_s == 2.0
        assert quick.target_loads == MeasurementPlan().target_loads

    def test_governor_period_must_fit(self):
        with pytest.raises(ValueError):
            MeasurementPlan(interval_s=1.0, governor_period_s=2.0)

    def test_bad_target_load_rejected(self):
        with pytest.raises(ValueError):
            MeasurementPlan(target_loads=(1.0, 0.0))
