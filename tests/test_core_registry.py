"""Tests for the declarative ArtifactSpec registry and its legacy shim."""

import pytest

from repro.core.registry import (
    CORPUS,
    FIGURE_IDS,
    REGISTRY,
    ArtifactSpec,
    description_of,
    register,
    sweep_resource,
)
from repro.core.study import FigureResult, Study


class TestSpecs:
    def test_every_entry_is_a_spec(self):
        for figure_id, spec in REGISTRY.items():
            assert isinstance(spec, ArtifactSpec)
            assert spec.artifact_id == figure_id
            assert spec.description
            assert spec.builder_name.startswith("_")

    def test_builders_resolve_on_study(self, study):
        for spec in REGISTRY.values():
            assert callable(spec.bind(study))

    def test_sweep_artifacts_declare_their_resource(self):
        assert REGISTRY["fig18"].depends == (sweep_resource(1),)
        assert REGISTRY["fig19"].depends == (sweep_resource(2),)
        assert REGISTRY["fig20"].depends == (sweep_resource(4),)
        assert REGISTRY["fig21"].depends == (sweep_resource(4),)

    def test_corpus_artifacts_declare_the_corpus(self):
        assert CORPUS in REGISTRY["fig3"].depends
        assert CORPUS not in REGISTRY["table2"].depends

    def test_tags_classify(self):
        assert "figure" in REGISTRY["fig1"].tags
        assert "table" in REGISTRY["table1"].tags
        assert "extension" in REGISTRY["gap"].tags

    def test_description_of(self):
        assert description_of("fig5") == REGISTRY["fig5"].description


class TestLegacyTupleShim:
    def test_tuple_unpacking_still_works(self):
        with pytest.warns(DeprecationWarning):
            method_name, description = REGISTRY["fig1"]
        assert method_name == "_fig01"
        assert description == REGISTRY["fig1"].description

    def test_index_access_still_works(self):
        with pytest.warns(DeprecationWarning):
            assert REGISTRY["fig3"][0] == "_fig03"
        with pytest.warns(DeprecationWarning):
            assert REGISTRY["fig3"][1] == REGISTRY["fig3"].description

    def test_len_matches_legacy_tuple(self):
        assert len(REGISTRY["fig1"]) == 2


class TestRegister:
    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(REGISTRY["fig1"])

    def test_callable_builder_registration(self, study):
        def build(target_study: Study) -> FigureResult:
            return FigureResult(
                figure_id="custom_count",
                title="corpus size",
                series={"count": len(target_study.corpus)},
                text=str(len(target_study.corpus)),
            )

        spec = ArtifactSpec(
            artifact_id="custom_count",
            builder=build,
            description="how many results the corpus holds",
            tags=("extension",),
        )
        register(spec)
        try:
            result = study.figure("custom_count")
            assert result.series["count"] == 477
            assert spec.builder_name == "build"
        finally:
            del REGISTRY["custom_count"]

    def test_registry_order_matches_figure_ids(self):
        assert tuple(REGISTRY) == FIGURE_IDS
