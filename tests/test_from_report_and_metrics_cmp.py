"""Tests for the report->result bridge and the metric-family comparison."""

import pytest

from repro.analysis.metric_comparison import (
    METRIC_FAMILY,
    equal_ep_different_ld,
    metric_table,
    rank_correlation_matrix,
)
from repro.dataset.corpus import Corpus
from repro.dataset.from_report import result_from_report, result_from_testbed_run
from repro.hwexp.testbed import TESTBED
from repro.power.governors import OndemandGovernor
from repro.power.microarch import Codename
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner


@pytest.fixture(scope="module")
def testbed_report():
    server = TESTBED[2]
    runner = SsjRunner(
        server=server.power_model(),
        profile=server.profile,
        governor=OndemandGovernor(),
        plan=MeasurementPlan(interval_s=3.0, ramp_s=0.5),
    )
    return server, runner.run()


class TestReportBridge:
    def test_testbed_run_becomes_a_result(self, testbed_report):
        server, report = testbed_report
        result = result_from_testbed_run(server, report)
        assert result.hw_year == server.hw_year
        assert result.total_cores == server.total_cores
        assert result.overall_score == pytest.approx(report.overall_score())
        assert result.ep == pytest.approx(report.energy_proportionality())

    def test_bridged_result_joins_the_corpus(self, corpus, testbed_report):
        server, report = testbed_report
        result = result_from_testbed_run(server, report)
        merged = Corpus(list(corpus) + [result])
        assert len(merged) == 478
        assert merged.get("testbed-2") is result
        # The analyses run over the merged population unchanged.
        from repro.analysis.temporal import yearly_trend

        trend = yearly_trend(merged, "ep", "hw")
        assert trend.by_year[server.hw_year].count == len(
            corpus.by_hw_year(server.hw_year)
        ) + 1

    def test_custom_identity(self, testbed_report):
        _server, report = testbed_report
        result = result_from_report(
            report,
            result_id="lab-1",
            vendor="Lab",
            model="Proto",
            hw_year=2016,
            codename=Codename.SKYLAKE,
            memory_gb=128.0,
            cores_per_chip=14,
        )
        assert result.result_id == "lab-1"
        assert result.memory_per_core_gb == pytest.approx(128.0 / 28.0)


class TestMetricComparison:
    def test_table_covers_everything(self, corpus):
        table = metric_table(corpus)
        assert len(table.ids) == 477
        for metric in METRIC_FAMILY:
            assert len(table.column(metric)) == 477

    def test_ep_and_er_rank_identically(self, corpus):
        matrix = rank_correlation_matrix(corpus)
        assert matrix[("ep", "er")] == pytest.approx(1.0, abs=1e-9)

    def test_ipr_anticorrelates_with_ep(self, corpus):
        matrix = rank_correlation_matrix(corpus)
        assert matrix[("ep", "ipr")] < -0.85

    def test_low_gap_anticorrelates_with_ep(self, corpus):
        matrix = rank_correlation_matrix(corpus)
        assert matrix[("ep", "pg_low")] < -0.7

    def test_matrix_is_symmetric_with_unit_diagonal(self, corpus):
        matrix = rank_correlation_matrix(corpus)
        for a in METRIC_FAMILY:
            assert matrix[(a, a)] == 1.0
            for b in METRIC_FAMILY:
                assert matrix[(a, b)] == matrix[(b, a)]

    def test_equal_ep_pairs_with_different_shapes_exist(self, corpus):
        """Section III.C: the scalar EP conceals curve shape."""
        pairs = equal_ep_different_ld(corpus)
        assert len(pairs) >= 1
        first = pairs[0]
        a, b = corpus.get(first[0]), corpus.get(first[1])
        assert abs(a.ep - b.ep) <= 0.01
        assert abs(a.linear_deviation - b.linear_deviation) >= 0.03
