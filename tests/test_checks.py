"""Tests for the repro.checks static-analysis subsystem."""

import json
from pathlib import Path

import pytest

from repro.checks import (
    RULES,
    Finding,
    Severity,
    apply_baseline,
    exit_code,
    load_baseline,
    run_checks,
    write_baseline,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "checks"
SRC = Path(__file__).parent.parent / "src"


def _hits(findings):
    return sorted((f.rule_id, Path(f.path).name, f.line) for f in findings)


class TestRuleCatalog:
    def test_every_family_is_registered(self):
        families = {rule_id[:4] for rule_id in RULES}
        assert families == {"REP1", "REP2", "REP3", "REP4", "REP5", "REP6"}

    def test_rules_are_documented(self):
        for rule in RULES.values():
            assert rule.description
            assert rule.name

    def test_warning_severity_rules(self):
        warnings = [
            rule_id
            for rule_id, rule in RULES.items()
            if rule.severity is Severity.WARNING
        ]
        assert warnings == ["REP305", "REP503", "REP504", "REP603", "REP605"]


class TestDeterminismRules:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "det_violations.py")], select=["REP1"]
        )
        assert _hits(findings) == [
            ("REP101", "det_violations.py", 8),
            ("REP102", "det_violations.py", 9),
            ("REP103", "det_violations.py", 10),
            ("REP104", "det_violations.py", 11),
            ("REP105", "det_violations.py", 12),
            ("REP106", "det_violations.py", 18),
            # the module-level generator also trips the flow family
            ("REP124", "det_violations.py", 12),
        ]

    def test_inline_suppression_respected(self):
        """Line 25 has the same REP106 shape plus an ignore marker."""
        findings = run_checks(
            [str(FIXTURES / "det_violations.py")], select=["REP106"]
        )
        assert [f.line for f in findings] == [18]


class TestRegistryRules:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "registry_violations.py")], select=["REP2"]
        )
        assert _hits(findings) == [
            ("REP201", "registry_violations.py", 6),
            ("REP202", "registry_violations.py", 7),
            ("REP203", "registry_violations.py", 10),
            ("REP204", "registry_violations.py", 9),
            ("REP205", "registry_violations.py", 11),
        ]

    def test_import_pass_is_clean_on_the_real_registry(self):
        findings = run_checks([str(SRC)], select=["REP2"])
        assert findings == []


class TestConcurrencyRules:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "concurrency_violations.py")], select=["REP3"]
        )
        assert _hits(findings) == [
            ("REP301", "concurrency_violations.py", 27),
            ("REP302", "concurrency_violations.py", 29),
            ("REP303", "concurrency_violations.py", 30),
            ("REP303", "concurrency_violations.py", 37),
            ("REP304", "concurrency_violations.py", 31),
            ("REP305", "concurrency_violations.py", 47),
        ]

    def test_warning_severity_does_not_fail_the_run(self):
        findings = run_checks(
            [str(FIXTURES / "concurrency_violations.py")], select=["REP305"]
        )
        assert [f.rule_id for f in findings] == ["REP305"]
        assert exit_code(findings) == 0


class TestParityRules:
    def test_exact_findings(self):
        findings = run_checks([str(FIXTURES / "parity_bad")], select=["REP4"])
        assert _hits(findings) == [
            ("REP401", "reference.py", 24),
            ("REP401", "reference.py", 25),
            ("REP402", "reference.py", 7),
            ("REP403", "enginepair.py", 15),
            ("REP404", "synthkernels.py", 9),
        ]

    def test_select_of_an_emitted_sibling_id_still_runs_the_pass(self):
        """REP404 is emitted by REP401's project checker."""
        findings = run_checks([str(FIXTURES / "parity_bad")], select=["REP404"])
        assert _hits(findings) == [("REP404", "synthkernels.py", 9)]


class TestRobustnessRules:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "robustness_violations.py")], select=["REP5"]
        )
        assert _hits(findings) == [
            ("REP501", "robustness_violations.py", 21),
            ("REP502", "robustness_violations.py", 9),
            ("REP503", "robustness_violations.py", 16),
            ("REP503", "robustness_violations.py", 18),
            ("REP503", "robustness_violations.py", 20),
            ("REP504", "robustness_violations.py", 30),
        ]

    def test_chained_raise_is_clean(self):
        """The 'from error' variant on line 36 must not fire REP504."""
        findings = run_checks(
            [str(FIXTURES / "robustness_violations.py")], select=["REP504"]
        )
        assert [f.line for f in findings] == [30]

    def test_untimed_waits_are_warnings_only(self):
        findings = run_checks(
            [str(FIXTURES / "robustness_violations.py")], select=["REP503"]
        )
        assert all(f.severity is Severity.WARNING for f in findings)
        assert exit_code(findings) == 0


class TestSharedMemoryRule:
    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "sharedmem_violations.py")], select=["REP505"]
        )
        assert _hits(findings) == [
            ("REP505", "sharedmem_violations.py", 9),
            ("REP505", "sharedmem_violations.py", 15),
        ]

    def test_leaks_are_errors(self):
        findings = run_checks(
            [str(FIXTURES / "sharedmem_violations.py")], select=["REP505"]
        )
        assert all(f.severity is Severity.ERROR for f in findings)
        assert exit_code(findings) == 1

    def test_managed_segments_are_clean(self):
        """try/finally and with-statement variants must not fire."""
        findings = run_checks(
            [str(FIXTURES / "sharedmem_violations.py")], select=["REP505"]
        )
        assert all(f.line in (9, 15) for f in findings)

    def test_sharded_engine_is_rule_clean(self):
        sharded = SRC / "repro" / "cluster" / "sharded.py"
        assert run_checks([str(sharded)], select=["REP505"]) == []


class TestServeOverloadRules:
    """REP306/REP506: every serve-path wait and queue must be bounded."""

    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "serve_tree")], select=["REP306", "REP506"]
        )
        assert _hits(findings) == [
            ("REP306", "bad_io.py", 5),
            ("REP306", "bad_io.py", 6),
            ("REP506", "bad_io.py", 12),
            ("REP506", "bad_io.py", 18),
        ]

    def test_rules_are_errors(self):
        findings = run_checks(
            [str(FIXTURES / "serve_tree")], select=["REP306", "REP506"]
        )
        assert findings and all(
            f.severity is Severity.ERROR for f in findings
        )
        assert exit_code(findings) == 1

    def test_outside_serve_path_is_quiet(self):
        findings = run_checks(
            [str(FIXTURES / "serve_tree" / "offline")],
            select=["REP306", "REP307", "REP506"],
        )
        assert findings == []

    def test_serve_package_is_rule_clean(self):
        serve = SRC / "repro" / "serve"
        assert run_checks(
            [str(serve)], select=["REP306", "REP307", "REP506"]
        ) == []


class TestLoopBlockingEngineRule:
    """REP307: serve coroutines must offload engine/builder calls."""

    def test_exact_findings(self):
        findings = run_checks(
            [str(FIXTURES / "serve_tree")], select=["REP307"]
        )
        assert _hits(findings) == [
            ("REP307", "bad_engine.py", 10),
            ("REP307", "bad_engine.py", 14),
            ("REP307", "bad_engine.py", 18),
        ]

    def test_is_an_error(self):
        findings = run_checks(
            [str(FIXTURES / "serve_tree")], select=["REP307"]
        )
        assert findings and all(
            f.severity is Severity.ERROR for f in findings
        )
        assert exit_code(findings) == 1


class TestEngine:
    def test_clean_fixture_has_no_findings(self):
        assert run_checks([str(FIXTURES / "clean.py")]) == []

    def test_source_tree_is_clean(self):
        findings = run_checks([str(SRC)])
        assert findings == []
        assert exit_code(findings) == 0

    def test_syntax_error_becomes_rep001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = run_checks([str(bad)])
        assert [f.rule_id for f in findings] == ["REP001"]
        assert exit_code(findings) == 1

    def test_ignore_filters_by_prefix(self):
        findings = run_checks(
            [str(FIXTURES / "det_violations.py")], ignore=["REP10"]
        )
        # the REP10x prefix leaves the REP12x flow family running
        assert [f.rule_id for f in findings] == ["REP124"]
        findings = run_checks(
            [str(FIXTURES / "det_violations.py")], ignore=["REP1"]
        )
        assert findings == []

    def test_findings_are_sorted(self):
        findings = run_checks([str(FIXTURES)])
        assert [f.sort_key() for f in findings] == sorted(
            f.sort_key() for f in findings
        )


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        findings = run_checks([str(FIXTURES / "det_violations.py")])
        snapshot = tmp_path / "baseline.json"
        write_baseline(snapshot, findings)
        surviving, suppressed = apply_baseline(
            findings, load_baseline(snapshot)
        )
        assert surviving == []
        assert suppressed == len(findings)

    def test_new_findings_survive_the_baseline(self, tmp_path):
        findings = run_checks([str(FIXTURES / "det_violations.py")])
        snapshot = tmp_path / "baseline.json"
        write_baseline(snapshot, findings[:-1])
        surviving, _ = apply_baseline(findings, load_baseline(snapshot))
        assert surviving == [findings[-1]]

    def test_second_occurrence_exceeds_the_budget(self, tmp_path):
        one = Finding("REP104", Severity.ERROR, "m.py", 3, 0, "clock")
        twin = Finding("REP104", Severity.ERROR, "m.py", 9, 0, "clock")
        snapshot = tmp_path / "baseline.json"
        write_baseline(snapshot, [one])
        surviving, suppressed = apply_baseline(
            [one, twin], load_baseline(snapshot)
        )
        assert suppressed == 1
        assert surviving == [twin]

    def test_version_mismatch_rejected(self, tmp_path):
        snapshot = tmp_path / "baseline.json"
        snapshot.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(snapshot)


class TestChecksCli:
    def test_violations_exit_nonzero_with_text_findings(self, capsys):
        code = main(["checks", str(FIXTURES / "det_violations.py")])
        assert code == 1
        captured = capsys.readouterr().out
        assert "REP101" in captured
        assert "error(s)" in captured

    def test_json_format_is_machine_readable(self, capsys):
        code = main(
            ["checks", str(FIXTURES / "det_violations.py"), "--format", "json"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["errors"] == 7
        rules = {entry["rule"] for entry in document["findings"]}
        assert "REP101" in rules

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["checks", str(SRC)]) == 0

    def test_select_narrows_the_run(self, capsys):
        code = main(
            [
                "checks",
                str(FIXTURES / "det_violations.py"),
                "--select",
                "REP104",
            ]
        )
        assert code == 1
        document = capsys.readouterr().out
        assert "REP104" in document
        assert "REP101" not in document

    def test_list_rules(self, capsys):
        assert main(["checks", "--list-rules"]) == 0
        captured = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in captured

    def test_baseline_flow(self, tmp_path, capsys):
        snapshot = tmp_path / "baseline.json"
        target = str(FIXTURES / "det_violations.py")
        assert (
            main(
                ["checks", target, "--baseline", str(snapshot),
                 "--write-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["checks", target, "--baseline", str(snapshot)]) == 0
        assert "baselined" in capsys.readouterr().out
