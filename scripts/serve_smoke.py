"""CI smoke check for the ``repro serve`` daemon.

Starts the daemon on a background thread (ephemeral port, warm
corpus), then asserts the serving contract end to end over real HTTP:

* every servable query family answers 200 with a well-formed
  ``QueryResult`` envelope (payload + provenance);
* a burst of identical concurrent queries coalesces into exactly one
  computation (the daemon's ``computations`` counter stays at 1 for
  the burst key and ``coalesced + memo_hits`` absorbs the rest);
* repeated warm queries are memo hits with byte-identical bodies;
* warm p99 latency stays under a generous ceiling sized for CI
  runners, not for small regressions;
* malformed payloads and unknown families come back as 400s without
  wedging the connection.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import sys
import threading
import time

from repro.serve import ServeApp, ServeClient, start_daemon_thread
from repro.serve.client import mixed_query_payloads

#: Generous warm-path p99 ceiling (ms), sized for slow CI runners.
MAX_WARM_P99_MS = 100.0
BURST_CLIENTS = 32
WARM_ROUNDS = 2
TIMED_ROUNDS = 25


def main() -> int:
    """Run the smoke check; returns a process exit code."""
    failures = []
    app = ServeApp()
    handle = start_daemon_thread(app)
    try:
        client = ServeClient(port=handle.port)
        if client.healthz() != {"status": "ok"}:
            failures.append("healthz did not answer ok")

        # Every servable family answers with a full envelope.
        payloads = mixed_query_payloads(servers=30, steps=8)
        for payload in payloads:
            status, document = client.query(dict(payload))
            if status != 200:
                failures.append(f"{payload['family']}: status {status}")
                continue
            for field in ("family", "payload", "text", "provenance"):
                if field not in document:
                    failures.append(
                        f"{payload['family']}: envelope missing {field!r}"
                    )

        # A concurrent identical burst coalesces to one computation.
        burst_payload = {"family": "replay", "servers": 40, "steps": 8}
        before = app.stats.computations
        bodies = [None] * BURST_CLIENTS

        def worker(index):
            burst_client = ServeClient(port=handle.port)
            status, document = burst_client.query(dict(burst_payload))
            bodies[index] = (status, json.dumps(document, sort_keys=True))
            burst_client.close()

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(BURST_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        if {status for status, _ in bodies} != {200}:
            failures.append("burst returned a non-200 status")
        if len({body for _, body in bodies}) != 1:
            failures.append("burst answers were not identical")
        burst_computations = app.stats.computations - before
        if burst_computations != 1:
            failures.append(
                f"burst ran {burst_computations} computations, expected 1"
            )
        if app.stats.coalesced + app.stats.memo_hits < BURST_CLIENTS - 1:
            failures.append(
                "burst was not absorbed by coalescing/memo "
                f"(coalesced={app.stats.coalesced}, "
                f"memo_hits={app.stats.memo_hits})"
            )

        # Warm repeats are memo hits and stay under the latency ceiling.
        for _ in range(WARM_ROUNDS):
            for payload in payloads:
                client.query(dict(payload))
        latencies = []
        for _ in range(TIMED_ROUNDS):
            for payload in payloads:
                sent = time.perf_counter()
                status, _document = client.query(dict(payload))
                latencies.append(time.perf_counter() - sent)
                if status != 200:
                    failures.append(f"warm query failed with {status}")
        latencies.sort()
        p99_ms = latencies[
            min(len(latencies) - 1, int(len(latencies) * 0.99))
        ] * 1000.0
        if p99_ms > MAX_WARM_P99_MS:
            failures.append(
                f"warm p99 {p99_ms:.2f}ms > ceiling {MAX_WARM_P99_MS:.0f}ms"
            )

        # Bad payloads are clean 400s, and the daemon keeps serving.
        status, _document = client.query({"family": "bogus"})
        if status != 400:
            failures.append(f"unknown family returned {status}, expected 400")
        status, _document = client.query({"family": "run_all"})
        if status != 400:
            failures.append(f"unservable family returned {status}")
        status, _document = client.query(dict(payloads[0]))
        if status != 200:
            failures.append("daemon stopped serving after a 400")
        client.close()
    finally:
        handle.stop()

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"smoke ok: {len(mixed_query_payloads())} families served, "
        f"{BURST_CLIENTS}-client burst coalesced to 1 computation, "
        f"warm p99 {p99_ms:.2f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
