#!/usr/bin/env python
"""Worker-tier smoke: byte identity and scaling over real HTTP.

Starts the serve daemon three times -- ``--workers 0`` (in-thread
fallback), ``--workers 1`` and ``--workers 4`` -- and proves the
process-pool tier is invisible to clients:

* every servable query family answers 200 from every pool size, and
  the response bodies are byte-identical once the two volatile
  provenance fields (``worker``, ``wall_time_ms``) are normalized;
* the 4-worker daemon stamps ``w<N>`` into provenance and exposes
  per-worker ``inflight`` / ``served`` / ``restarts`` counters under
  ``/stats``;
* an all-distinct compute workload (one engine build per query, no
  memo/coalescer/batch collapse) scales >= 2x over the ``--workers 0``
  baseline -- asserted only on machines with >= 4 CPUs (the pool
  cannot beat the baseline without cores to run on; smaller boxes
  print the measured ratio and skip the assertion).

CI runs this as the ``serve-scale`` job::

    PYTHONPATH=src python scripts/serve_scale_smoke.py
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

MIN_SCALING = 2.0
SCALING_CPUS = 4
COMPUTE_QUERIES = 24
COMPUTE_CLIENTS = 8


def normalized(document):
    """A response document minus its two volatile provenance fields."""
    clone = json.loads(json.dumps(document, sort_keys=True))
    clone.get("provenance", {}).pop("worker", None)
    clone.get("provenance", {}).pop("wall_time_ms", None)
    return json.dumps(clone, sort_keys=True)


def family_sweep(workers):
    """(family -> normalized body, worker stamps, stats doc) for one pool."""
    from repro.serve import ServeApp, ServeClient, start_daemon_thread
    from repro.serve.client import mixed_query_payloads

    app = ServeApp(workers=workers)
    handle = start_daemon_thread(app)
    bodies = {}
    stamps = {}
    try:
        client = ServeClient(port=handle.port, timeout_s=120)
        try:
            for payload in mixed_query_payloads(servers=30, steps=8):
                status, document = client.query(dict(payload))
                if status != 200:
                    raise SystemExit(
                        f"workers={workers}: {payload['family']} -> "
                        f"{status}: {document}"
                    )
                bodies[payload["family"]] = normalized(document)
                stamps[payload["family"]] = document["provenance"]["worker"]
            stats = client.stats()
        finally:
            client.close()
    finally:
        handle.stop()
    return bodies, stamps, stats


def compute_qps(workers):
    """All-distinct placement throughput against one daemon."""
    from repro.serve import ServeApp, ServeClient, start_daemon_thread

    payloads = [
        {
            "family": "placement",
            "servers": 1600 + 7 * index,
            "demand_fraction": round(0.25 + 0.5 * index / COMPUTE_QUERIES, 4),
            "policy": "ep-aware",
        }
        for index in range(COMPUTE_QUERIES)
    ]
    app = ServeApp(workers=workers)
    handle = start_daemon_thread(app)
    try:
        jobs = queue.Queue()
        for payload in payloads:
            jobs.put(payload)
        failures = []

        def drain():
            client = ServeClient(port=handle.port, timeout_s=300)
            try:
                while True:
                    try:
                        payload = jobs.get_nowait()
                    except queue.Empty:
                        return
                    status, document = client.query(dict(payload))
                    if status != 200:
                        failures.append((status, document))
            finally:
                client.close()

        threads = [threading.Thread(target=drain) for _ in range(COMPUTE_CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        elapsed = time.perf_counter() - started
        if failures:
            raise SystemExit(f"compute workload failed: {failures[:3]}")
    finally:
        handle.stop()
    return COMPUTE_QUERIES / elapsed


def main() -> int:
    print("sweeping every query family across pool sizes ...", flush=True)
    sweeps = {workers: family_sweep(workers) for workers in (0, 1, 4)}

    baseline_bodies, baseline_stamps, _stats = sweeps[0]
    for family, stamp in baseline_stamps.items():
        assert stamp == "-", f"in-thread {family} stamped {stamp!r}"
    for workers in (1, 4):
        bodies, _stamps, _stats = sweeps[workers]
        for family, body in baseline_bodies.items():
            assert bodies[family] == body, (
                f"workers={workers}: {family} response differs from "
                f"--workers 0"
            )
    print(f"  {len(baseline_bodies)} families byte-identical across "
          "workers 0|1|4")

    _bodies, stamps, stats = sweeps[4]
    computed = {
        family: stamp for family, stamp in stamps.items() if stamp != "-"
    }
    assert computed, "no pooled query carried a worker stamp"
    assert all(stamp.startswith("w") for stamp in computed.values())
    workers_doc = stats["workers"]
    assert [entry["index"] for entry in workers_doc] == [0, 1, 2, 3]
    for entry in workers_doc:
        assert set(entry) >= {"inflight", "served", "restarts"}
    assert sum(entry["served"] for entry in workers_doc) >= len(computed)
    assert stats["stats"]["worker_restarts"] == 0
    print(f"  worker stamps: {sorted(set(computed.values()))}; "
          f"served={[entry['served'] for entry in workers_doc]}")

    print("measuring compute scaling (workers 0 vs 4) ...", flush=True)
    base = compute_qps(0)
    pooled = compute_qps(4)
    ratio = pooled / base
    cpus = os.cpu_count() or 1
    print(f"  base {base:.1f} q/s, pool {pooled:.1f} q/s, "
          f"ratio {ratio:.2f}x on {cpus} cpus")
    if cpus >= SCALING_CPUS:
        assert ratio >= MIN_SCALING, (
            f"compute scaling {ratio:.2f}x < required {MIN_SCALING:.1f}x "
            f"on {cpus} cpus"
        )
        print(f"  scaling >= {MIN_SCALING:.1f}x: OK")
    else:
        print(f"  < {SCALING_CPUS} cpus: scaling floor not enforced")
    print("serve-scale smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
