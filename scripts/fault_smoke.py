"""CI smoke check for the fault-tolerant execution layer.

Runs the full study under a canned fault plan — one transient cache
fault plus one builder that fails on its first attempt — with
``on_error="isolate"`` and ``RetryPolicy(attempts=2)``, then asserts
the resilience contract:

* retries mask every transient: the failure ledger is empty and every
  artifact is byte-identical to a fault-free reference run;
* a permanent builder fault quarantines exactly that artifact (and
  nothing else), while all remaining artifacts still match the
  reference;
* the same plan and seed produce the same ledger signature twice.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python scripts/fault_smoke.py [cache_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.core.cache import ArtifactCache
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.registry import FIGURE_IDS
from repro.core.resilience import RetryPolicy
from repro.core.study import Study

TRANSIENT_PLAN = {
    "seed": 0,
    "faults": [
        {"site": "cache.read", "mode": "fail-once", "error": "cache"},
        {"site": "builder.fig5", "mode": "fail-once", "error": "transient"},
    ],
}


def values_equal(a, b) -> bool:
    """Recursive equality tolerant of numpy arrays nested in payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            values_equal(a[key], b[key]) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    return bool(np.all(a == b))


def main(argv) -> int:
    """Run the smoke check; returns a process exit code."""
    cache_dir = argv[0] if argv else tempfile.mkdtemp(prefix="repro_fault_")
    study = Study()
    retry = RetryPolicy(attempts=2, base_delay_s=0.0)
    failures = []

    reference = study.run_all()

    # Transient faults + retries: no quarantine, identical artifacts.
    cache = ArtifactCache(cache_dir)
    study.run_all(jobs=4, cache=cache)  # warm the cache for cache.read
    masked = study.run_all(
        jobs=4,
        cache=cache,
        report=True,
        on_error="isolate",
        retry=retry,
        faults=FaultPlan.from_dict(TRANSIENT_PLAN),
    )
    if masked.failures:
        failures.append(
            f"retries left a non-empty ledger: {masked.failures.render()}"
        )
    for figure_id in FIGURE_IDS:
        result = masked[figure_id]
        baseline = reference[figure_id]
        if result.text != baseline.text or not values_equal(
            result.series, baseline.series
        ):
            failures.append(f"faulty run diverged for {figure_id}")

    # Permanent fault: exactly one artifact quarantined, rest identical.
    permanent = FaultPlan(
        [FaultSpec(site="builder.fig5", mode="fail", error="build")]
    )
    broken = study.run_all(
        jobs=4, report=True, on_error="isolate", retry=retry, faults=permanent
    )
    if broken.failures.failed_ids != ("fig5",):
        failures.append(
            f"expected only fig5 quarantined, got {broken.failures.failed_ids}"
        )
    for figure_id in FIGURE_IDS:
        if figure_id == "fig5":
            continue
        if broken[figure_id].text != reference[figure_id].text:
            failures.append(f"isolated run diverged for {figure_id}")

    # Determinism: same plan + seed, same ledger signature.
    rerun = study.run_all(
        jobs=2,
        report=True,
        on_error="isolate",
        retry=retry,
        faults=FaultPlan(
            [FaultSpec(site="builder.fig5", mode="fail", error="build")]
        ),
    )
    if rerun.failures.signature() != broken.failures.signature():
        failures.append("ledger signature changed between identical runs")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "smoke ok: transients masked by retry, permanent fault quarantined "
        "fig5 only, ledger deterministic"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
