#!/usr/bin/env python
"""CI smoke check for the sharded mega-fleet tier.

Tiles the 2016 cohort to ~100k servers as a lazy ``TiledFleetView``,
then asserts the tier's two load-bearing contracts:

* **byte-identity** -- every sharded placement summary (both policies,
  idle and power-off accounting, a demand sweep, the power-cap search)
  and a windowed trace replay equal the columnar engine's reductions
  float for float, int for int;
* **auto routing** -- ``fleet_backend="auto"`` sends a view this large
  to the sharded engine, and the lazy view itself stays O(base)
  (no million-clone materialization on the sharded side).

Exits non-zero on any divergence.  Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py [n_servers]
"""

from __future__ import annotations

import sys

from repro.cluster.batch_placement import BatchPlacementEngine, resolve_backend
from repro.cluster.batch_trace import BatchTraceReplay
from repro.cluster.fleet_arrays import tile_fleet
from repro.cluster.sharded import ShardedFleetEngine, ShardedTraceReplay
from repro.cluster.trace import diurnal_trace
from repro.dataset.synthesis import generate_corpus

DEFAULT_SERVERS = 100_000

FRACTIONS = (0.0, 0.1, 0.35, 0.6, 0.85, 1.0, 1.15)


def summary_key(outcome):
    """Every observable scalar of a placement outcome, types included."""
    return (
        outcome.policy,
        outcome.demand_ops,
        outcome.placed_ops,
        type(outcome.placed_ops).__name__,
        outcome.total_power_w,
        type(outcome.total_power_w).__name__,
        outcome.unused_idle_power_w,
        outcome.servers_used,
        outcome.fleet_efficiency,
        outcome.satisfied(),
    )


def main(argv) -> int:
    """Run the smoke check; returns a process exit code."""
    n_servers = int(argv[0]) if argv else DEFAULT_SERVERS
    failures = []

    corpus = generate_corpus(2016)
    view = tile_fleet(corpus.by_hw_year(2016).results(), n_servers)

    routed = resolve_backend(view, "auto")
    if not isinstance(routed, ShardedFleetEngine):
        failures.append(
            f"auto routing sent a {n_servers}-server view to "
            f"{type(routed).__name__}, expected ShardedFleetEngine"
        )
        routed = ShardedFleetEngine(view)
    print(
        f"fleet: {n_servers} servers over {len(view.base)} base records, "
        f"spilled={routed.spilled}",
        flush=True,
    )

    columnar = BatchPlacementEngine(list(view))
    capacity = float(sum(columnar.arrays.full_capacity.tolist()))

    # Placement sweep: both policies, both idle accountings.
    for fraction in FRACTIONS:
        demand = fraction * capacity
        for policy in ("pack-to-full", "ep-aware"):
            for power_off in (False, True):
                ours = summary_key(routed.place(policy, demand, power_off))
                theirs = summary_key(
                    columnar.place(policy, demand, power_off)
                )
                if ours != theirs:
                    failures.append(
                        f"placement diverged: {policy} at {fraction:.2f} "
                        f"power_off={power_off}: {ours} != {theirs}"
                    )
    print("placement sweep: done", flush=True)

    # Power-cap search.
    for cap_w in (1e6, 8e6):
        for policy in ("pack-to-full", "ep-aware"):
            ours = summary_key(routed.max_throughput_under_cap(cap_w, policy))
            theirs = summary_key(
                columnar.max_throughput_under_cap(cap_w, policy)
            )
            if ours != theirs:
                failures.append(
                    f"cap search diverged: {policy} under {cap_w:.0f} W: "
                    f"{ours} != {theirs}"
                )
    print("cap search: done", flush=True)

    # Windowed replay vs the columnar day loop.
    trace = diurnal_trace(steps_per_day=24, noise=0.05, seed=11)
    sharded_replay = ShardedTraceReplay(routed, window_steps=7)
    batch_replay = BatchTraceReplay(columnar)
    for policy in ("pack-to-full", "ep-aware"):
        ours = sharded_replay.replay(trace, policy)
        theirs = batch_replay.replay(trace, policy)
        if ours != theirs:
            failures.append(
                f"replay diverged for {policy}: {ours} != {theirs}"
            )
    print("windowed replay: done", flush=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"fleet smoke passed: sharded == columnar at {n_servers} servers"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
