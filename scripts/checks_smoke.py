#!/usr/bin/env python
"""Smoke test for the incremental checks engine: cold vs warm self-scan.

Runs ``repro checks`` over ``src/`` twice against a fresh cache
directory.  The first (cold) run parses and analyses every file; the
second (warm) run must be served entirely from the fingerprint-keyed
finding cache.  The smoke asserts three properties:

* the self-scan is clean (zero findings with the full rule set);
* cold and warm runs report identical findings;
* the warm run is at least 5x faster than the cold run (in practice
  the fully-warm path skips parsing entirely and is ~100x faster).

Usage::

    PYTHONPATH=src python scripts/checks_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Required cold/warm speedup.  The fully-warm path re-reads and
#: re-hashes sources but runs no parser and no rules, so anything
#: under this floor means the cache is not actually being hit.
MIN_WARM_SPEEDUP = 5.0


def main() -> int:
    from repro.checks import run_checks
    from repro.checks.incremental import FindingCache

    target = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory(prefix="checks_smoke_") as tmp:
        cache_dir = Path(tmp) / "cache"
        started = time.perf_counter()
        cold_findings = run_checks([target], cache=FindingCache(cache_dir))
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_findings = run_checks([target], cache=FindingCache(cache_dir))
        warm_s = time.perf_counter() - started

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold self-scan : {cold_s:8.3f}s ({len(cold_findings)} findings)")
    print(f"warm self-scan : {warm_s:8.3f}s ({len(warm_findings)} findings)")
    print(f"warm speedup   : {speedup:8.1f}x (required >= {MIN_WARM_SPEEDUP:.0f}x)")

    failures = []
    if cold_findings:
        for found in cold_findings:
            print(f"  {found.path}:{found.line}: {found.rule_id} {found.message}")
        failures.append(f"self-scan is not clean: {len(cold_findings)} findings")
    cold_dicts = [found.to_dict() for found in cold_findings]
    warm_dicts = [found.to_dict() for found in warm_findings]
    if cold_dicts != warm_dicts:
        failures.append("warm findings differ from cold findings")
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm speedup {speedup:.1f}x below required {MIN_WARM_SPEEDUP:.0f}x"
        )
    if failures:
        print("FAILED:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    print("checks smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
