#!/usr/bin/env python
"""Benchmark report for the repo's hot paths.

Times the workloads the performance work targets -- corpus synthesis,
the discrete-event simulate sweep, cold/warm ``run_all`` through the
artifact engine, multi-seed ensemble throughput, the columnar
fleet engine (10k-server trace replay, both backends, plus a placement
sweep), the sharded out-of-core tier (a million-server replay, run in
a subprocess so its peak RSS is attributable), the incremental
``repro checks`` self-scan (cold vs fully-warm), the serve
daemon's warm mixed-query throughput, its cold compute scaling
through the process-pool worker tier (all-distinct engine builds,
``--workers 4`` vs the in-thread baseline), and the serve overload
path (shed-answer p99 and graceful-drain time under an injected
burst) --
and writes the results to
``BENCH_core.json`` at the repo root so the perf trajectory is tracked
in-tree.  Fleet benchmarks record peak RSS (``resource.getrusage``)
next to their timings.

Usage::

    PYTHONPATH=src python scripts/bench_report.py            # full
    PYTHONPATH=src python scripts/bench_report.py --quick    # CI smoke
    PYTHONPATH=src python scripts/bench_report.py --check    # + ceilings

``--check`` asserts every timing stays under a generous ceiling (sized
for slow CI runners, not for regressions of a few percent) and exits
non-zero on a breach, which is how CI catches an order-of-magnitude
regression without flaking on machine noise.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"

#: Generous wall-clock ceilings (seconds) for --check, sized so only a
#: gross regression (or a broken vectorized path) trips them.
CEILINGS = {
    "generate_corpus_s": 2.0,
    "simulate_sweep_s": 5.0,
    "run_all_cold_s": 60.0,
    "run_all_warm_s": 10.0,
    "ensemble_serial_s": 60.0,
    "ensemble_parallel_s": 60.0,
    "fleet_replay_10k_s": 30.0,
    "placement_sweep_s": 20.0,
    "fleet_replay_1m_s": 120.0,
    "checks_src_s": 30.0,
    "serve_drain_s": 10.0,
}

#: Minimum cold/warm speedup --check demands on the incremental
#: ``repro checks`` self-scan.  A fully-warm run skips parsing and
#: every rule pass, so this is a property of the finding cache, not of
#: runner speed (measured ~100-250x; required 5x).
MIN_CHECKS_WARM_SPEEDUP = 5.0

#: Fixed peak-RSS budget (MiB) for the million-server sharded replay.
#: The windowed out-of-core design keeps residency at the spilled
#: column maps plus one window of scalars, so the peak is a property
#: of the tier, not of trace length; measured ~280 MiB, budgeted 4x.
MAX_FLEET_1M_RSS_MB = 1024.0

#: Minimum columnar-over-scalar speedup --check demands on the
#: 10k-server trace replay (the scalar side is measured on a truncated
#: trace and extrapolated, so this is a property of the engines, not
#: of runner speed).
MIN_FLEET_SPEEDUP = 10.0

#: Floor on warm mixed-query throughput against the serve daemon and a
#: ceiling on its p99 latency.  Warm queries are memo hits, so both are
#: properties of the serve pipeline (HTTP framing + memo lookup), not
#: of engine speed, and only a gross regression trips them.
MIN_SERVE_QPS = 1000.0
MAX_SERVE_P99_MS = 100.0

#: Worker count for the serve compute-scaling benchmark, and the
#: minimum throughput ratio --check demands over the --workers 0
#: baseline on that pool.  The all-distinct workload is pure engine
#: builds, so the ratio is a property of the worker tier (fork
#: sharing + sticky routing), not of memo or batching.  Enforced only
#: on machines with >= MIN_COMPUTE_CPUS cores: a 4-worker pool cannot
#: beat 2.5x on fewer physical cores, so smaller boxes record the
#: measured ratio (next to ``config.cpus``) without gating on it.
SERVE_COMPUTE_WORKERS = 4
MIN_SERVE_COMPUTE_SCALING = 2.5
MIN_COMPUTE_CPUS = 4

#: Ceiling on the p99 turnaround of a *shed* (503) answer while the
#: daemon is saturated.  Shedding happens before any engine work, so
#: its cost is one event-loop exchange (measured ~10 ms under a
#: 4x-capacity burst); a breach means admission control is queueing
#: behind the engine instead of failing fast.  The companion
#: ``serve_drain_s`` ceiling lives in ``CEILINGS``.
MAX_SERVE_SHED_P99_MS = 100.0


def _peak_rss_mb() -> float:
    """This process's lifetime peak resident set, in MiB.

    ``ru_maxrss`` is a monotone high-water mark, so values recorded
    after each fleet benchmark bound that workload from above (every
    earlier workload is included); the million-server bench runs in
    its own subprocess precisely so its peak is exact.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_generate_corpus(repeats: int) -> float:
    from repro.dataset.synthesis import generate_corpus

    return _best_of(repeats, lambda: generate_corpus(2016))


def bench_simulate_sweep(repeats: int) -> float:
    from repro.hwexp.sweeps import run_sweep
    from repro.hwexp.testbed import TESTBED
    from repro.ssj.load_levels import MeasurementPlan

    plan = MeasurementPlan(interval_s=1.0, ramp_s=0.25)
    return _best_of(
        repeats,
        lambda: run_sweep(
            TESTBED[2],
            frequencies=(1.2, 1.5, 1.8),
            memory_per_core=(2.0, 4.0),
            method="simulate",
            plan=plan,
        ),
    )


def bench_run_all(jobs: int):
    """Cold build then warm (fully cached) rerun; returns both times."""
    from repro.core.cache import ArtifactCache
    from repro.core.study import Study

    with tempfile.TemporaryDirectory(prefix="bench_cache_") as cache_dir:
        study = Study()
        cache = ArtifactCache(cache_dir)
        started = time.perf_counter()
        study.run_all(jobs=jobs, cache=cache)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        study.run_all(jobs=jobs, cache=cache)
        warm = time.perf_counter() - started
    return cold, warm


def _tiled_fleet(n_servers: int):
    from repro.cluster.fleet_arrays import tile_fleet
    from repro.dataset.synthesis import generate_corpus

    corpus = generate_corpus(2016)
    return tile_fleet(corpus.by_hw_year(2016).results(), n_servers)


def bench_fleet_replay(n_servers: int, steps: int, scalar_steps: int):
    """Columnar full-day replay vs scalar on the same tiled fleet.

    The columnar engine replays the whole day; the scalar path is
    measured on the first ``scalar_steps`` timesteps only (a full
    scalar day at 10k servers takes minutes) and extrapolated
    linearly, which flatters the scalar side if anything (it skips
    most of the trace's high-demand steps).
    """
    from repro.cluster.trace import DemandTrace, diurnal_trace, replay_trace

    fleet = _tiled_fleet(n_servers)
    trace = diurnal_trace(steps_per_day=steps, noise=0.0)
    started = time.perf_counter()
    replay_trace(fleet, trace, policy="ep-aware", fleet_backend="columnar")
    columnar = time.perf_counter() - started
    truncated = DemandTrace(
        times_h=trace.times_h[:scalar_steps],
        demand_fraction=trace.demand_fraction[:scalar_steps],
    )
    started = time.perf_counter()
    replay_trace(fleet, truncated, policy="ep-aware", fleet_backend="scalar")
    scalar = (time.perf_counter() - started) * (steps / scalar_steps)
    return columnar, scalar


#: The subprocess body for the mega-fleet bench: build the lazy tiled
#: view, resolve the sharded replayer (spilling the columns out of
#: core), replay the trace, and report wall time + exact peak RSS.
_MEGA_BENCH_SCRIPT = """\
import json, resource, sys, time
from repro.cluster.batch_trace import resolve_trace_backend
from repro.cluster.fleet_arrays import tile_fleet
from repro.cluster.trace import diurnal_trace
from repro.dataset.synthesis import generate_corpus

n_servers, steps = int(sys.argv[1]), int(sys.argv[2])
corpus = generate_corpus(2016)
fleet = tile_fleet(corpus.by_hw_year(2016).results(), n_servers)
trace = diurnal_trace(steps_per_day=steps, noise=0.0)
started = time.perf_counter()
replayer = resolve_trace_backend(fleet, "sharded")
outcome = replayer.replay(trace, "ep-aware")
elapsed = time.perf_counter() - started
peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
print(json.dumps({
    "elapsed_s": elapsed,
    "peak_rss_mb": peak_mb,
    "energy_kwh": outcome.energy_kwh,
    "spilled": replayer.engine.spilled,
}))
"""


def bench_fleet_replay_1m(n_servers: int, steps: int):
    """Sharded mega-fleet replay in a subprocess; (seconds, peak MiB).

    ``ru_maxrss`` is a process-lifetime high-water mark, so the only
    way to attribute a peak to this one workload is to give it its own
    process; a fresh spill directory keeps the run cold (layout build
    and spill write are part of the cost a caller pays).
    """
    with tempfile.TemporaryDirectory(prefix="bench_spill_") as spill_dir:
        env = dict(os.environ)
        env["REPRO_SPILL_DIR"] = spill_dir
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-c", _MEGA_BENCH_SCRIPT,
             str(n_servers), str(steps)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
            timeout=900,
        )
    report = json.loads(completed.stdout.splitlines()[-1])
    if not report["spilled"]:
        raise RuntimeError("mega-fleet bench did not engage the spill tier")
    return report["elapsed_s"], report["peak_rss_mb"]


def bench_placement_sweep(n_servers: int, repeats: int) -> float:
    """A demand sweep through both columnar placement policies.

    Includes engine construction, so the timing covers the full cost a
    caller pays from a cold fleet list.
    """
    from repro.cluster.batch_placement import BatchPlacementEngine

    fleet = _tiled_fleet(n_servers)
    fractions = [i / 12 for i in range(13)]

    def run():
        engine = BatchPlacementEngine(fleet)
        capacity = sum(engine.arrays.full_capacity.tolist())
        for fraction in fractions:
            for policy in ("pack-to-full", "ep-aware"):
                engine.place(policy, fraction * capacity)

    return _best_of(repeats, run)


#: Warm-up passes over the mixed workload before any serve timing.
#: Pinned (never scaled down by --quick): the first rounds pay memo
#: fills, TCP slow paths and branch-predictor warm-up, and letting
#: --quick skip them is exactly the 3700-vs-3041 q/s drift the medians
#: below are meant to kill.
SERVE_WARM_ROUNDS = 5

#: Independent timed trials per serve benchmark; the reported figure
#: is the per-metric median, so one noisy trial (GC pause, cron tick)
#: cannot move the recorded number.
SERVE_TRIALS = 3


def _median(values):
    ranked = sorted(values)
    return ranked[len(ranked) // 2]


def bench_serve(timed_rounds: int):
    """Warm mixed-query throughput against an in-process daemon.

    Starts the serve daemon on a background thread, drives the stock
    mixed workload (every servable query family) through a persistent
    HTTP client for :data:`SERVE_WARM_ROUNDS` passes, then runs
    :data:`SERVE_TRIALS` timed trials of ``timed_rounds`` passes each
    and reports the per-metric median.  Returns
    ``(qps, p50_ms, p99_ms)``.
    """
    from repro.serve import ServeClient, start_daemon_thread
    from repro.serve.client import mixed_query_payloads

    payloads = mixed_query_payloads(servers=30, steps=8)
    handle = start_daemon_thread()
    trials = []
    try:
        client = ServeClient(port=handle.port)
        for _ in range(SERVE_WARM_ROUNDS):
            for payload in payloads:
                status, document = client.query(dict(payload))
                if status != 200:
                    raise RuntimeError(
                        f"serve returned {status} for {payload}: {document}"
                    )
        for _trial in range(SERVE_TRIALS):
            latencies = []
            started = time.perf_counter()
            for _ in range(timed_rounds):
                for payload in payloads:
                    sent = time.perf_counter()
                    client.query(dict(payload))
                    latencies.append(time.perf_counter() - sent)
            elapsed = time.perf_counter() - started
            latencies.sort()
            count = len(latencies)
            trials.append((
                count / elapsed if elapsed > 0 else float("inf"),
                latencies[count // 2] * 1000.0,
                latencies[min(count - 1, int(count * 0.99))] * 1000.0,
            ))
        client.close()
    finally:
        handle.stop()
    return tuple(
        _median([trial[i] for trial in trials]) for i in range(3)
    )


def _compute_payloads(queries: int):
    """All-distinct compute-heavy placement queries.

    Every payload differs in fleet size *and* demand level, so no two
    share a spec key (memo and coalescer never collapse them) or a
    fleet cohort (the batch window never groups them) -- each query is
    one full engine build, the workload the worker pool parallelizes.
    """
    return [
        {
            # ~25 ms of engine build per query at this fleet size, so
            # the per-exchange worker IPC cost (~1 ms) stays noise
            "family": "placement",
            "servers": 1600 + 7 * index,
            "demand_fraction": round(0.25 + 0.5 * index / queries, 4),
            "policy": "ep-aware",
        }
        for index in range(queries)
    ]


def bench_serve_compute(workers: int, queries: int, clients: int):
    """Cold compute throughput through ``workers`` engine workers.

    Drives ``queries`` all-distinct placement builds from ``clients``
    concurrent HTTP clients against a daemon with ``workers`` engine
    worker processes (0 = the in-thread fallback), repeated for
    :data:`SERVE_TRIALS` trials of fresh payloads each, and returns
    the median queries-per-second.  Distinct specs spread across
    workers by sticky routing, so the figure measures multi-core
    engine scaling, not memo or batching wins.
    """
    import queue as queue_module
    import threading

    from repro.serve import ServeApp, ServeClient, start_daemon_thread

    app = ServeApp(workers=workers)
    handle = start_daemon_thread(app)
    rates = []
    try:
        # one distinct warm pass spins up every worker's first exchange
        for trial in range(SERVE_TRIALS + 1):
            payloads = _compute_payloads(queries)
            # disjoint server counts per trial keep every query cold
            for payload in payloads:
                payload["servers"] += 7 * queries * trial
            jobs = queue_module.Queue()
            for payload in payloads:
                jobs.put(payload)
            failures = []

            def drain():
                client = ServeClient(port=handle.port, timeout_s=120)
                try:
                    while True:
                        try:
                            payload = jobs.get_nowait()
                        except queue_module.Empty:
                            return
                        status, document = client.query(dict(payload))
                        if status != 200:
                            failures.append((status, document))
                finally:
                    client.close()

            threads = [
                threading.Thread(target=drain) for _ in range(clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - started
            if failures:
                raise RuntimeError(
                    f"compute bench failed: {failures[:3]}"
                )
            if trial > 0:  # trial 0 is the warm pass
                rates.append(queries / elapsed if elapsed > 0 else 0.0)
    finally:
        handle.stop()
    return _median(rates)


def bench_serve_overload(clients: int = 32):
    """Shed-path p99 and graceful-drain duration under overload.

    Saturates a deliberately tiny daemon (4 slots + 4 queue places)
    with a ``clients``-wide burst of distinct cold queries while the
    engine carries injected latency (the ``serve.engine`` fault site),
    and measures the p99 turnaround of the *shed* (503) answers --
    shedding happens before engine work, so it must cost event-loop
    exchanges, not engine seconds.  Then, with fresh queries still in
    flight, stops the daemon and times the graceful drain.  Returns
    ``(shed_p99_ms, drain_s)``.
    """
    import threading

    from repro.core.faults import FaultPlan, FaultSpec, install
    from repro.serve import (
        ServeApp,
        ServeClient,
        ServeLimits,
        start_daemon_thread,
    )

    def spec(index: int, base: float = 0.0):
        lo = round(base + 0.01 * index, 3)
        return {"family": "cdf", "metric": "ep", "lo": lo, "hi": lo + 0.005}

    app = ServeApp(limits=ServeLimits(max_inflight=4, max_queue=4))
    plan = FaultPlan(
        [FaultSpec(site="serve.engine", mode="latency", delay_s=0.25)]
    )
    answers = [None] * clients
    barrier = threading.Barrier(clients)
    drain_workers = 4
    drained = [None] * drain_workers
    with install(plan):
        handle = start_daemon_thread(app)

        def burst(index):
            client = ServeClient(port=handle.port, timeout_s=60)
            try:
                barrier.wait(timeout=30)
                sent = time.perf_counter()
                status, _doc = client.query(spec(index))
                answers[index] = (status, time.perf_counter() - sent)
            finally:
                client.close()

        threads = [
            threading.Thread(target=burst, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        def worker(index):
            client = ServeClient(port=handle.port, timeout_s=60)
            try:
                drained[index] = client.query(spec(index, base=0.9))[0]
            finally:
                client.close()

        admitted_before = app.stats.admitted
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(drain_workers)
        ]
        for thread in threads:
            thread.start()
        settle = time.monotonic() + 5.0
        while (app.stats.admitted < admitted_before + drain_workers
               and time.monotonic() < settle):
            time.sleep(0.005)
        started = time.perf_counter()
        handle.stop(timeout_s=30)
        drain_s = time.perf_counter() - started
        for thread in threads:
            thread.join(timeout=30)
    shed = sorted(
        latency for entry in answers if entry
        for status, latency in [entry] if status == 503
    )
    if not shed:
        raise RuntimeError("overload bench shed nothing; burst too small")
    if any(status != 200 for status in drained):
        raise RuntimeError(f"graceful drain lost requests: {drained}")
    shed_p99_ms = shed[min(len(shed) - 1, int(len(shed) * 0.99))] * 1000.0
    return shed_p99_ms, drain_s


def bench_checks():
    """Cold vs fully-warm ``repro checks`` self-scan over ``src/``.

    Both runs share one fresh cache directory: the first pays parsing
    plus every rule pass, the second must be served entirely from the
    fingerprint-keyed finding cache.  Raises if the self-scan is not
    clean, so the bench doubles as a gate on the shipped tree.
    """
    from repro.checks import run_checks
    from repro.checks.incremental import FindingCache

    target = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory(prefix="bench_checks_") as tmp:
        cache_dir = Path(tmp) / "cache"
        started = time.perf_counter()
        findings = run_checks([target], cache=FindingCache(cache_dir))
        cold = time.perf_counter() - started
        started = time.perf_counter()
        run_checks([target], cache=FindingCache(cache_dir))
        warm = time.perf_counter() - started
    if findings:
        raise RuntimeError(
            f"repro checks self-scan is not clean: {len(findings)} findings"
        )
    return cold, warm


def bench_ensemble(seeds: int, jobs: int):
    """Serial and parallel ensemble wall times over the same seeds."""
    from repro.core.ensemble import run_ensemble

    started = time.perf_counter()
    run_ensemble(seeds, jobs=1)
    serial = time.perf_counter() - started
    started = time.perf_counter()
    run_ensemble(seeds, jobs=jobs)
    parallel = time.perf_counter() - started
    return serial, parallel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions and smaller ensembles (CI smoke mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert timings stay under the generous ceilings",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="PATH",
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy

    repeats = 2 if args.quick else 5
    sweep_repeats = 1 if args.quick else 3
    ensemble_seeds = 3 if args.quick else 6
    ensemble_jobs = 3 if args.quick else 4
    run_all_jobs = 4
    fleet_servers = 10_000
    trace_steps = 96
    scalar_steps = 1 if args.quick else 2
    placement_repeats = 1 if args.quick else 2
    mega_servers = 1_000_000
    mega_steps = 96 if args.quick else 672
    serve_timed_rounds = 50 if args.quick else 200
    compute_workers = SERVE_COMPUTE_WORKERS
    compute_queries = 16 if args.quick else 48
    compute_clients = 8

    timings = {}
    print("benchmarking corpus generation ...", flush=True)
    timings["generate_corpus_s"] = bench_generate_corpus(repeats)
    print("benchmarking simulate sweep ...", flush=True)
    timings["simulate_sweep_s"] = bench_simulate_sweep(sweep_repeats)
    print("benchmarking cold/warm run_all ...", flush=True)
    cold, warm = bench_run_all(run_all_jobs)
    timings["run_all_cold_s"] = cold
    timings["run_all_warm_s"] = warm
    timings["warm_speedup"] = cold / warm if warm > 0 else float("inf")
    print("benchmarking ensemble throughput ...", flush=True)
    serial, parallel = bench_ensemble(ensemble_seeds, ensemble_jobs)
    timings["ensemble_serial_s"] = serial
    timings["ensemble_parallel_s"] = parallel
    timings["ensemble_seeds_per_s"] = ensemble_seeds / serial if serial > 0 else 0.0
    print("benchmarking 10k-server trace replay ...", flush=True)
    columnar, scalar = bench_fleet_replay(
        fleet_servers, trace_steps, scalar_steps
    )
    timings["fleet_replay_10k_s"] = columnar
    timings["fleet_replay_10k_rss_mb"] = _peak_rss_mb()
    timings["fleet_replay_scalar_s"] = scalar
    timings["fleet_replay_speedup"] = (
        scalar / columnar if columnar > 0 else float("inf")
    )
    print("benchmarking placement sweep ...", flush=True)
    timings["placement_sweep_s"] = bench_placement_sweep(
        fleet_servers, placement_repeats
    )
    timings["placement_sweep_rss_mb"] = _peak_rss_mb()
    print("benchmarking 1M-server sharded replay ...", flush=True)
    mega_elapsed, mega_rss = bench_fleet_replay_1m(mega_servers, mega_steps)
    timings["fleet_replay_1m_s"] = mega_elapsed
    timings["fleet_replay_1m_rss_mb"] = mega_rss
    print("benchmarking checks self-scan (cold vs warm) ...", flush=True)
    checks_cold, checks_warm = bench_checks()
    timings["checks_src_s"] = checks_cold
    timings["checks_warm_s"] = checks_warm
    timings["checks_warm_speedup"] = (
        checks_cold / checks_warm if checks_warm > 0 else float("inf")
    )
    print("benchmarking serve daemon ...", flush=True)
    serve_qps, serve_p50_ms, serve_p99_ms = bench_serve(serve_timed_rounds)
    timings["serve_qps"] = serve_qps
    timings["serve_p50_ms"] = serve_p50_ms
    timings["serve_p99_ms"] = serve_p99_ms
    print("benchmarking serve compute scaling (worker pool) ...", flush=True)
    base_qps = bench_serve_compute(0, compute_queries, compute_clients)
    pool_qps = bench_serve_compute(
        compute_workers, compute_queries, compute_clients
    )
    timings["serve_compute_base_qps"] = base_qps
    timings["serve_compute_qps"] = pool_qps
    timings["serve_compute_scaling"] = (
        pool_qps / base_qps if base_qps > 0 else float("inf")
    )
    print("benchmarking serve overload (shed + drain) ...", flush=True)
    shed_p99_ms, drain_s = bench_serve_overload()
    timings["serve_shed_p99_ms"] = shed_p99_ms
    timings["serve_drain_s"] = drain_s

    payload = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "config": {
            "corpus_repeats": repeats,
            "sweep_repeats": sweep_repeats,
            "ensemble_seeds": ensemble_seeds,
            "ensemble_jobs": ensemble_jobs,
            "run_all_jobs": run_all_jobs,
            "fleet_servers": fleet_servers,
            "trace_steps": trace_steps,
            "scalar_steps": scalar_steps,
            "placement_repeats": placement_repeats,
            "mega_servers": mega_servers,
            "mega_steps": mega_steps,
            "serve_warm_rounds": SERVE_WARM_ROUNDS,
            "serve_trials": SERVE_TRIALS,
            "serve_timed_rounds": serve_timed_rounds,
            "compute_workers": compute_workers,
            "compute_queries": compute_queries,
            "compute_clients": compute_clients,
            "cpus": os.cpu_count(),
        },
        "timings": {key: round(value, 4) for key, value in timings.items()},
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, value in payload["timings"].items():
        print(f"  {key:<22} {value:>10.4f}")

    if args.check:
        breaches = [
            f"{key}: {timings[key]:.3f}s > ceiling {ceiling:.1f}s"
            for key, ceiling in CEILINGS.items()
            if timings[key] > ceiling
        ]
        if timings["fleet_replay_speedup"] < MIN_FLEET_SPEEDUP:
            breaches.append(
                f"fleet_replay_speedup: {timings['fleet_replay_speedup']:.1f}x "
                f"< required {MIN_FLEET_SPEEDUP:.0f}x"
            )
        if timings["serve_qps"] < MIN_SERVE_QPS:
            breaches.append(
                f"serve_qps: {timings['serve_qps']:.0f} q/s "
                f"< required {MIN_SERVE_QPS:.0f} q/s"
            )
        if timings["serve_p99_ms"] > MAX_SERVE_P99_MS:
            breaches.append(
                f"serve_p99_ms: {timings['serve_p99_ms']:.2f}ms "
                f"> ceiling {MAX_SERVE_P99_MS:.0f}ms"
            )
        cpus = os.cpu_count() or 1
        if (cpus >= MIN_COMPUTE_CPUS
                and timings["serve_compute_scaling"]
                < MIN_SERVE_COMPUTE_SCALING):
            breaches.append(
                f"serve_compute_scaling: "
                f"{timings['serve_compute_scaling']:.2f}x "
                f"< required {MIN_SERVE_COMPUTE_SCALING:.1f}x "
                f"on {cpus} cpus"
            )
        if timings["serve_shed_p99_ms"] > MAX_SERVE_SHED_P99_MS:
            breaches.append(
                f"serve_shed_p99_ms: {timings['serve_shed_p99_ms']:.2f}ms "
                f"> ceiling {MAX_SERVE_SHED_P99_MS:.0f}ms"
            )
        if timings["checks_warm_speedup"] < MIN_CHECKS_WARM_SPEEDUP:
            breaches.append(
                f"checks_warm_speedup: "
                f"{timings['checks_warm_speedup']:.1f}x "
                f"< required {MIN_CHECKS_WARM_SPEEDUP:.0f}x"
            )
        if timings["fleet_replay_1m_rss_mb"] > MAX_FLEET_1M_RSS_MB:
            breaches.append(
                f"fleet_replay_1m_rss_mb: "
                f"{timings['fleet_replay_1m_rss_mb']:.0f} MiB "
                f"> budget {MAX_FLEET_1M_RSS_MB:.0f} MiB"
            )
        if breaches:
            print("ceiling breaches:", *breaches, sep="\n  ", file=sys.stderr)
            return 1
        print("all timings under their ceilings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
