#!/usr/bin/env python
"""Benchmark report for the repo's hot paths.

Times the four workloads the performance work targets -- corpus
synthesis, the discrete-event simulate sweep, cold/warm ``run_all``
through the artifact engine, and multi-seed ensemble throughput -- and
writes the results to ``BENCH_core.json`` at the repo root so the perf
trajectory is tracked in-tree.

Usage::

    PYTHONPATH=src python scripts/bench_report.py            # full
    PYTHONPATH=src python scripts/bench_report.py --quick    # CI smoke
    PYTHONPATH=src python scripts/bench_report.py --check    # + ceilings

``--check`` asserts every timing stays under a generous ceiling (sized
for slow CI runners, not for regressions of a few percent) and exits
non-zero on a breach, which is how CI catches an order-of-magnitude
regression without flaking on machine noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"

#: Generous wall-clock ceilings (seconds) for --check, sized so only a
#: gross regression (or a broken vectorized path) trips them.
CEILINGS = {
    "generate_corpus_s": 2.0,
    "simulate_sweep_s": 5.0,
    "run_all_cold_s": 60.0,
    "run_all_warm_s": 10.0,
    "ensemble_serial_s": 60.0,
    "ensemble_parallel_s": 60.0,
}


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_generate_corpus(repeats: int) -> float:
    from repro.dataset.synthesis import generate_corpus

    return _best_of(repeats, lambda: generate_corpus(2016))


def bench_simulate_sweep(repeats: int) -> float:
    from repro.hwexp.sweeps import run_sweep
    from repro.hwexp.testbed import TESTBED
    from repro.ssj.load_levels import MeasurementPlan

    plan = MeasurementPlan(interval_s=1.0, ramp_s=0.25)
    return _best_of(
        repeats,
        lambda: run_sweep(
            TESTBED[2],
            frequencies=(1.2, 1.5, 1.8),
            memory_per_core=(2.0, 4.0),
            method="simulate",
            plan=plan,
        ),
    )


def bench_run_all(jobs: int):
    """Cold build then warm (fully cached) rerun; returns both times."""
    from repro.core.cache import ArtifactCache
    from repro.core.study import Study

    with tempfile.TemporaryDirectory(prefix="bench_cache_") as cache_dir:
        study = Study()
        cache = ArtifactCache(cache_dir)
        started = time.perf_counter()
        study.run_all(jobs=jobs, cache=cache)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        study.run_all(jobs=jobs, cache=cache)
        warm = time.perf_counter() - started
    return cold, warm


def bench_ensemble(seeds: int, jobs: int):
    """Serial and parallel ensemble wall times over the same seeds."""
    from repro.core.ensemble import run_ensemble

    started = time.perf_counter()
    run_ensemble(seeds, jobs=1)
    serial = time.perf_counter() - started
    started = time.perf_counter()
    run_ensemble(seeds, jobs=jobs)
    parallel = time.perf_counter() - started
    return serial, parallel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repetitions and smaller ensembles (CI smoke mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert timings stay under the generous ceilings",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="PATH",
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy

    repeats = 2 if args.quick else 5
    sweep_repeats = 1 if args.quick else 3
    ensemble_seeds = 3 if args.quick else 6
    ensemble_jobs = 3 if args.quick else 4
    run_all_jobs = 4

    timings = {}
    print("benchmarking corpus generation ...", flush=True)
    timings["generate_corpus_s"] = bench_generate_corpus(repeats)
    print("benchmarking simulate sweep ...", flush=True)
    timings["simulate_sweep_s"] = bench_simulate_sweep(sweep_repeats)
    print("benchmarking cold/warm run_all ...", flush=True)
    cold, warm = bench_run_all(run_all_jobs)
    timings["run_all_cold_s"] = cold
    timings["run_all_warm_s"] = warm
    timings["warm_speedup"] = cold / warm if warm > 0 else float("inf")
    print("benchmarking ensemble throughput ...", flush=True)
    serial, parallel = bench_ensemble(ensemble_seeds, ensemble_jobs)
    timings["ensemble_serial_s"] = serial
    timings["ensemble_parallel_s"] = parallel
    timings["ensemble_seeds_per_s"] = ensemble_seeds / serial if serial > 0 else 0.0

    payload = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "config": {
            "corpus_repeats": repeats,
            "sweep_repeats": sweep_repeats,
            "ensemble_seeds": ensemble_seeds,
            "ensemble_jobs": ensemble_jobs,
            "run_all_jobs": run_all_jobs,
        },
        "timings": {key: round(value, 4) for key, value in timings.items()},
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, value in payload["timings"].items():
        print(f"  {key:<22} {value:>10.4f}")

    if args.check:
        breaches = [
            f"{key}: {timings[key]:.3f}s > ceiling {ceiling:.1f}s"
            for key, ceiling in CEILINGS.items()
            if timings[key] > ceiling
        ]
        if breaches:
            print("ceiling breaches:", *breaches, sep="\n  ", file=sys.stderr)
            return 1
        print("all timings under their ceilings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
