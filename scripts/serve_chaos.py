"""Chaos harness for the serve daemon's overload-resilience layer.

Drives the daemon through seeded fault-injection scenarios (the
``serve.engine`` / ``serve.handler`` / ``serve.io`` sites of
:mod:`repro.core.faults`) over real HTTP and asserts the overload
contract deterministically:

* **overload burst** -- a 4x-capacity burst of distinct queries sheds
  cleanly: every connection gets an answer (zero hung, zero reset),
  only 200/503 statuses appear, at least the admitted capacity
  succeeds, sheds answer fast, and the p99 of *accepted* requests
  stays within 5x the uncontended p99;
* **deadline storm** -- every request carries a deadline far below the
  injected engine latency: all answer 504 and the daemon is left with
  an empty coalescer map, an empty response memo and an idle batch
  window (abandoned flights are cancelled, not leaked), after which
  the same specs succeed;
* **drain under load** -- ``stop()`` while admitted queries are still
  computing loses zero accepted requests, finishes inside the drain
  budget, and the stopped port refuses new connections;
* **circuit breaker** -- a spec that fails permanently trips open
  after the configured failures, fails fast with 503 + Retry-After
  during the cooldown, and recovers on schedule via the half-open
  probe -- and a :class:`~repro.core.resilience.RetryPolicy` client
  rides through the trip to the recovered answer.

Prints ``serve_shed_p99_ms`` and ``serve_drain_s`` (the metrics
``bench_report.py --check`` enforces) and exits non-zero on any
violation.  Usage::

    PYTHONPATH=src python scripts/serve_chaos.py
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.faults import FaultPlan, FaultSpec, install  # noqa: E402
from repro.core.resilience import RetryPolicy  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeApp,
    ServeClient,
    ServeLimits,
    start_daemon_thread,
)

#: Overload scenario shape: 4 slots + 4 queue places, hit with 4x that.
BURST_INFLIGHT = 4
BURST_QUEUE = 4
BURST_CLIENTS = 4 * (BURST_INFLIGHT + BURST_QUEUE)
ENGINE_LATENCY_S = 0.25

STORM_CLIENTS = 16
STORM_DEADLINE_MS = 50.0
STORM_LATENCY_S = 0.5

DRAIN_WORKERS = 4
DRAIN_LATENCY_S = 0.4

BREAKER_FAILURES = 3
BREAKER_COOLDOWN_S = 0.5


def cdf(index, base=0.0):
    lo = round(base + 0.01 * index, 3)
    return {"family": "cdf", "metric": "ep", "lo": lo, "hi": lo + 0.005}


def run_threads(count, worker):
    """Run ``worker(i)`` on ``count`` threads; returns the stragglers."""
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return [thread for thread in threads if thread.is_alive()]


def scenario_overload_burst(failures):
    """4x-capacity burst: clean sheds, bounded accepted latency."""
    app = ServeApp(
        limits=ServeLimits(
            max_inflight=BURST_INFLIGHT, max_queue=BURST_QUEUE,
            retry_after_s=1.0,
        )
    )
    plan = FaultPlan(
        [FaultSpec(site="serve.engine", mode="latency",
                   delay_s=ENGINE_LATENCY_S)]
    )
    answers = [None] * BURST_CLIENTS
    errors = [None] * BURST_CLIENTS
    barrier = threading.Barrier(BURST_CLIENTS)
    with install(plan):
        handle = start_daemon_thread(app)
        try:
            # uncontended baseline under the same injected engine latency
            baseline_client = ServeClient(port=handle.port)
            baseline_s = 0.0
            for i in range(4):
                sent = time.perf_counter()
                status, _doc = baseline_client.query(cdf(i, base=0.9))
                baseline_s = max(baseline_s, time.perf_counter() - sent)
                if status != 200:
                    failures.append(f"burst baseline query got {status}")
            baseline_client.close()

            def worker(index):
                client = ServeClient(port=handle.port, timeout_s=60)
                try:
                    barrier.wait(timeout=30)
                    sent = time.perf_counter()
                    status, _doc = client.query(cdf(index))
                    answers[index] = (status, time.perf_counter() - sent)
                except Exception as exc:  # reset/hung connections are bugs
                    errors[index] = exc
                finally:
                    client.close()

            hung = run_threads(BURST_CLIENTS, worker)
        finally:
            handle.stop(timeout_s=30)
    if hung:
        failures.append(f"burst left {len(hung)} hung connection(s)")
    dropped = [e for e in errors if e is not None]
    if dropped:
        failures.append(
            f"burst reset {len(dropped)} connection(s): {dropped[0]!r}"
        )
    statuses = sorted(status for status, _lat in answers if answers)
    if set(statuses) - {200, 503}:
        failures.append(f"burst produced unexpected statuses: {statuses}")
    accepted = [lat for status, lat in answers if status == 200]
    shed = [lat for status, lat in answers if status == 503]
    if len(accepted) < BURST_INFLIGHT + BURST_QUEUE:
        failures.append(
            f"burst accepted only {len(accepted)} "
            f"(capacity {BURST_INFLIGHT + BURST_QUEUE})"
        )
    if not shed:
        failures.append("4x-capacity burst shed nothing")
    if app.stats.shed != len(shed):
        failures.append(
            f"shed counter {app.stats.shed} != shed responses {len(shed)}"
        )
    accepted.sort()
    shed.sort()
    accepted_p99_s = accepted[
        min(len(accepted) - 1, int(len(accepted) * 0.99))
    ]
    shed_p99_ms = shed[min(len(shed) - 1, int(len(shed) * 0.99))] * 1000.0
    if accepted_p99_s > 5.0 * baseline_s + 0.25:
        failures.append(
            f"accepted p99 {accepted_p99_s:.3f}s > 5x uncontended "
            f"{baseline_s:.3f}s"
        )
    print(
        f"  burst: {len(accepted)} accepted / {len(shed)} shed, "
        f"accepted p99 {accepted_p99_s * 1000.0:.1f}ms "
        f"(uncontended {baseline_s * 1000.0:.1f}ms), "
        f"shed p99 {shed_p99_ms:.1f}ms"
    )
    return shed_p99_ms


def scenario_deadline_storm(failures):
    """Deadlines far below engine latency: 504s and no residue."""
    app = ServeApp()
    plan = FaultPlan(
        [FaultSpec(site="serve.engine", mode="latency",
                   delay_s=STORM_LATENCY_S, times=STORM_CLIENTS)]
    )
    answers = [None] * STORM_CLIENTS
    barrier = threading.Barrier(STORM_CLIENTS)
    with install(plan):
        handle = start_daemon_thread(app)
        try:
            def worker(index):
                client = ServeClient(port=handle.port, timeout_s=60)
                try:
                    barrier.wait(timeout=30)
                    answers[index] = client.query(
                        cdf(index), deadline_ms=STORM_DEADLINE_MS
                    )[0]
                finally:
                    client.close()

            hung = run_threads(STORM_CLIENTS, worker)
            if hung:
                failures.append(f"storm left {len(hung)} hung connection(s)")
            if set(answers) != {504}:
                failures.append(f"storm statuses {sorted(set(answers))}, "
                                "expected all 504")
            # abandoned flights must cancel and leave no residue behind
            deadline = time.monotonic() + 10.0
            while len(app._coalescer) and time.monotonic() < deadline:
                time.sleep(0.02)
            if len(app._coalescer):
                failures.append(
                    f"coalescer still holds {len(app._coalescer)} flight(s)"
                )
            if len(app._memo):
                failures.append(
                    f"memo holds {len(app._memo)} entries for expired work"
                )
            if app._batch.pending:
                failures.append(
                    f"batch window still holds {app._batch.pending} rider(s)"
                )
            if app.stats.timeouts != STORM_CLIENTS:
                failures.append(
                    f"timeouts counter {app.stats.timeouts} != "
                    f"{STORM_CLIENTS}"
                )
            # the same specs must succeed once the injected latency is spent
            client = ServeClient(port=handle.port)
            rerun = [client.query(cdf(i))[0] for i in range(STORM_CLIENTS)]
            if set(rerun) != {200}:
                failures.append(
                    f"post-storm rerun statuses {sorted(set(rerun))}"
                )
            stats = client.stats()["stats"]
            for counter in ("shed", "timeouts", "breaker_fastfail",
                            "breaker_trips", "admitted"):
                if counter not in stats:
                    failures.append(f"/stats is missing {counter!r}")
            client.close()
        finally:
            handle.stop(timeout_s=30)
    print(
        f"  storm: {STORM_CLIENTS} x {STORM_DEADLINE_MS:g}ms deadlines vs "
        f"{STORM_LATENCY_S:g}s engine -> all 504, maps empty, rerun clean"
    )


def scenario_drain_under_load(failures):
    """stop() with admitted work in flight loses zero requests."""
    app = ServeApp(limits=ServeLimits(drain_s=10.0))
    plan = FaultPlan(
        [FaultSpec(site="serve.engine", mode="latency",
                   delay_s=DRAIN_LATENCY_S, times=DRAIN_WORKERS)]
    )
    answers = [None] * DRAIN_WORKERS
    with install(plan):
        handle = start_daemon_thread(app)

        def worker(index):
            client = ServeClient(port=handle.port, timeout_s=60)
            try:
                answers[index] = client.query(cdf(index))
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(DRAIN_WORKERS)
        ]
        for thread in threads:
            thread.start()
        settle = time.monotonic() + 5.0
        while app.stats.admitted < DRAIN_WORKERS and time.monotonic() < settle:
            time.sleep(0.005)
        if app.stats.admitted != DRAIN_WORKERS:
            failures.append(
                f"only {app.stats.admitted}/{DRAIN_WORKERS} queries "
                "admitted before the drain"
            )
        started = time.perf_counter()
        handle.stop(timeout_s=30)
        drain_s = time.perf_counter() - started
        for thread in threads:
            thread.join(timeout=30)
        if any(thread.is_alive() for thread in threads):
            failures.append("drain left client threads hanging")
    lost = [a for a in answers if a is None or a[0] != 200]
    if lost:
        failures.append(
            f"drain lost {len(lost)} accepted request(s): "
            f"{[a if a is None else a[0] for a in answers]}"
        )
    if drain_s > 10.0:
        failures.append(f"drain took {drain_s:.2f}s > 10s budget")
    try:
        ServeClient(port=handle.port, timeout_s=2).healthz()
        failures.append("stopped daemon still accepts connections")
    except OSError:
        pass
    print(
        f"  drain: {DRAIN_WORKERS} in-flight queries all answered 200, "
        f"drained in {drain_s:.2f}s"
    )
    return drain_s


def scenario_breaker(failures):
    """Permanent failures trip the breaker; it recovers on schedule."""
    app = ServeApp(
        limits=ServeLimits(
            breaker_failures=BREAKER_FAILURES,
            breaker_cooldown_s=BREAKER_COOLDOWN_S,
        )
    )
    plan = FaultPlan(
        [FaultSpec(site="serve.engine", mode="fail-n", error="data",
                   times=BREAKER_FAILURES)]
    )
    spec = cdf(0)
    with install(plan):
        handle = start_daemon_thread(app)
        try:
            client = ServeClient(port=handle.port)
            for attempt in range(BREAKER_FAILURES):
                status, _doc = client.query(dict(spec))
                if status != 500:
                    failures.append(
                        f"injected failure {attempt} answered {status}, "
                        "expected 500"
                    )
            status, _doc = client.query(dict(spec))
            if status != 503:
                failures.append(f"tripped spec answered {status}, not 503")
            if client.last_headers.get("retry-after") is None:
                failures.append("breaker 503 carried no Retry-After hint")
            if app._breaker.trips != 1:
                failures.append(f"breaker trips {app._breaker.trips} != 1")
            if app.stats.breaker_fastfail < 1:
                failures.append("breaker fast-fail counter did not move")
            # recovery on schedule: a seeded-retry client waits out the
            # cooldown (honoring Retry-After) and lands the probe
            retry_client = ServeClient(
                port=handle.port,
                retry=RetryPolicy(attempts=4, base_delay_s=0.2,
                                  max_delay_s=1.0, jitter=0.0),
            )
            status, document = retry_client.query(dict(spec))
            if status != 200:
                failures.append(
                    f"breaker did not recover after cooldown: {status} "
                    f"{document}"
                )
            if retry_client.retried_503 < 1:
                failures.append("retry client never saw the tripped 503")
            if app._breaker.open_keys() != 0:
                failures.append("breaker still open after a good probe")
            client.close()
            retry_client.close()
        finally:
            handle.stop(timeout_s=30)
    print(
        f"  breaker: tripped after {BREAKER_FAILURES} permanent failures, "
        f"failed fast with Retry-After, recovered after "
        f"{BREAKER_COOLDOWN_S:g}s cooldown"
    )


def main() -> int:
    failures = []
    print("chaos: overload burst ...", flush=True)
    shed_p99_ms = scenario_overload_burst(failures)
    print("chaos: deadline storm ...", flush=True)
    scenario_deadline_storm(failures)
    print("chaos: drain under load ...", flush=True)
    drain_s = scenario_drain_under_load(failures)
    print("chaos: circuit breaker ...", flush=True)
    scenario_breaker(failures)

    print(f"serve_shed_p99_ms {shed_p99_ms:.2f}")
    print(f"serve_drain_s {drain_s:.3f}")
    if failures:
        for failure in failures:
            print(f"CHAOS FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos ok: shed clean, deadlines residue-free, drain lossless, "
          "breaker recovered")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
