"""CI smoke check for the artifact engine.

Runs a cold ``run_all()`` (parallel, filling the cache), a warm one
(served from the cache), and a serial reference, then asserts the
engine contract:

* the warm run hits the cache for every artifact and is >= 5x faster
  than the cold run;
* parallel results equal serial results artifact-by-artifact.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python scripts/cache_smoke.py [cache_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.core.cache import ArtifactCache
from repro.core.registry import FIGURE_IDS
from repro.core.study import Study


def values_equal(a, b) -> bool:
    """Recursive equality tolerant of numpy arrays nested in payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            values_equal(a[key], b[key]) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    return bool(np.all(a == b))


def main(argv) -> int:
    """Run the smoke check; returns a process exit code."""
    cache_dir = argv[0] if argv else tempfile.mkdtemp(prefix="repro_smoke_")
    study = Study()
    cache = ArtifactCache(cache_dir)

    serial = study.run_all()
    cold = study.run_all(jobs=4, cache=cache, report=True)
    warm = study.run_all(jobs=4, cache=cache, report=True)

    print(warm.render())
    print(
        f"cold {cold.total_seconds * 1000.0:.1f} ms "
        f"({cold.built} built) / warm {warm.total_seconds * 1000.0:.1f} ms "
        f"({warm.cache_hits} cached)"
    )

    failures = []
    if cold.cache_hits != 0:
        failures.append(f"cold run hit the cache {cold.cache_hits}x")
    if warm.cache_hits != len(FIGURE_IDS):
        failures.append(
            f"warm run only hit {warm.cache_hits}/{len(FIGURE_IDS)} artifacts"
        )
    speedup = cold.total_seconds / max(warm.total_seconds, 1e-9)
    if speedup < 5.0:
        failures.append(f"warm speedup only {speedup:.1f}x (need >= 5x)")
    for figure_id in FIGURE_IDS:
        if serial[figure_id].text != cold[figure_id].text or not values_equal(
            serial[figure_id].series, cold[figure_id].series
        ):
            failures.append(f"parallel != serial for {figure_id}")
        if warm[figure_id].text != cold[figure_id].text:
            failures.append(f"cached != built for {figure_id}")

    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"smoke ok: warm speedup {speedup:.0f}x, all artifacts identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
