#!/usr/bin/env python3
"""The reorganization story: why the paper re-indexes by hardware year.

Run with::

    python examples/reorganization_story.py

15.5% of the published SPECpower results carry a published year
different from the hardware's availability year — some by six years.
This example computes the same EP trend twice, once per year basis, and
shows how the correction moves the statistics (the paper's Section I
argument for the whole methodology).
"""

from repro import Study
from repro.analysis.temporal import (
    delta_range,
    mismatch_fraction,
    reorganization_deltas,
    yearly_trend,
)
from repro.viz.ascii_chart import line_chart
from repro.viz.tables import format_table


def main() -> None:
    study = Study()
    corpus = study.corpus

    share = mismatch_fraction(corpus)
    print(f"{share:.1%} of the {len(corpus)} results were published in a "
          f"different year than their hardware became available "
          f"(paper: 15.5%).\n")

    hw = yearly_trend(corpus, "ep", basis="hw")
    published = yearly_trend(corpus, "ep", basis="published")

    years = sorted(set(hw.years()) & set(published.years()))
    rows = []
    for year in years:
        h = hw.by_year[year].mean
        p = published.by_year[year].mean
        rows.append([year, p, h, f"{(h / p - 1):+.1%}"])
    print(format_table(
        ["year", "avg EP (published basis)", "avg EP (hw basis)", "shift"],
        rows,
        title="the same statistic under the two year indexings",
    ))

    chart = line_chart(
        {
            "hw availability": [
                (year, hw.by_year[year].mean) for year in years
            ],
            "published": [
                (year, published.by_year[year].mean) for year in years
            ],
        },
        title="average EP trend under both bases",
    )
    print("\n" + chart)

    for metric, label in (("ep", "EP"), ("score", "EE")):
        low, high = delta_range(reorganization_deltas(corpus, metric, "avg"))
        print(f"\nre-indexing moves yearly average {label} by "
              f"{low:+.1%} .. {high:+.1%}")
    print("(paper: avg EP -6.2%..+8.7%, avg EE -2.2%..+16.6%)")


if __name__ == "__main__":
    main()
