#!/usr/bin/env python3
"""Hardware tuning: find a server's best memory and frequency setup.

Run with::

    python examples/hardware_tuning.py

Reproduces the paper's Section V methodology on the Table II testbed:
sweep installed memory per core and CPU frequency, and read off the
efficiency-optimal configuration -- then validate the analytic sweep
against a full discrete-event benchmark run.
"""

from repro.hwexp import TESTBED, run_sweep
from repro.power.governors import OndemandGovernor
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner
from repro.viz.tables import format_table


def main() -> None:
    server = TESTBED[4]  # ThinkServer RD450, the paper's Fig. 20/21 machine
    print(f"tuning {server.name} ({server.cpu_model}, "
          f"{server.total_cores} cores)")

    sweep = run_sweep(server)
    top = max(server.frequencies_ghz)

    rows = []
    for mpc in server.tested_memory_per_core:
        cell = sweep.cell(mpc, top)
        ondemand = sweep.cell(mpc, "ondemand")
        rows.append(
            [f"{mpc:g}", cell.overall_efficiency, ondemand.overall_efficiency,
             cell.peak_power_w]
        )
    print(format_table(
        ["GB/core", f"EE @{top:g}GHz", "EE @ondemand", "peak W"],
        rows,
        title="memory-per-core sweep",
        float_format="{:.1f}",
    ))
    best = sweep.best_memory_per_core()
    print(f"\nbest memory per core: {best:g} GB "
          f"(the paper measured {server.profile.heap_demand_gb_per_core:g})")

    # Cross-check the best cell with the event-driven benchmark.
    runner = SsjRunner(
        server=server.power_model(memory_gb=server.memory_gb_for(best)),
        profile=server.profile_for(best),
        governor=OndemandGovernor(),
        plan=MeasurementPlan(interval_s=4.0, ramp_s=0.5),
    )
    report = runner.run()
    analytic = sweep.cell(best, "ondemand").overall_efficiency
    print(f"\ndiscrete-event benchmark at the best configuration:")
    print(report.to_text())
    print(f"\nanalytic sweep said {analytic:.1f} ops/W; the simulated run "
          f"measured {report.overall_score():.1f} ops/W")


if __name__ == "__main__":
    main()
