#!/usr/bin/env python3
"""Fleet analysis: slice the corpus the way a capacity planner would.

Run with::

    python examples/fleet_analysis.py

Walks through the corpus query API: filtering by era, vendor family,
and configuration; ranking by proportionality; and exporting a figure's
data series to CSV for external plotting.
"""

from repro import Study
from repro.analysis.grouping import codename_ep_table
from repro.analysis.temporal import yearly_trend
from repro.power.microarch import Family
from repro.viz.series import Series, to_csv
from repro.viz.tables import format_table


def main() -> None:
    study = Study()
    corpus = study.corpus

    # 1. Which microarchitectures are the most proportional?
    print("Top codenames by average EP (10+ servers):")
    for stat in codename_ep_table(corpus):
        if stat.count >= 10:
            print(f"  {stat.label:<16} n={stat.count:<4} avg EP {stat.ep.mean:.2f}")

    # 2. The modern fleet: 2-chip, 2013+, Intel.
    modern = (
        corpus.by_hw_year_range(2013, 2016)
        .single_node()
        .by_chips(2)
        .filter(lambda r: r.family in (Family.HASWELL, Family.SKYLAKE))
    )
    print(f"\nmodern 2-chip Intel fleet: {len(modern)} servers")
    rows = [
        [r.model, r.hw_year, r.ep, r.overall_score, f"{r.primary_peak_spot:.0%}"]
        for r in sorted(modern, key=lambda r: -r.ep)[:8]
    ]
    print(format_table(["model", "year", "EP", "score", "peak spot"], rows))

    # 3. Export the EP trend for external tooling.
    trend = yearly_trend(corpus, "ep", "hw")
    series = [
        Series.from_xy("avg_ep", trend.years(), trend.series("avg")),
        Series.from_xy("median_ep", trend.years(), trend.series("median")),
    ]
    csv_text = to_csv(series)
    print(f"\nCSV export of the EP trend ({len(csv_text.splitlines()) - 1} rows):")
    print("\n".join(csv_text.splitlines()[:5]) + "\n...")


if __name__ == "__main__":
    main()
