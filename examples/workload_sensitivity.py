#!/usr/bin/env python3
"""Workload sensitivity: one server, four workloads, four EP values.

Run with::

    python examples/workload_sensitivity.py

Implements the paper's future-work agenda (Section VII): the same
physical server exhibits different energy-proportionality and
efficiency curves under different workload personalities, so placement
policies should characterize per workload (the Section V.C caveat).
"""

from repro.hwexp.testbed import TESTBED
from repro.hwexp.workloads import compare_workloads, ep_spread
from repro.ssj.variants import VARIANTS
from repro.viz.ascii_chart import line_chart
from repro.viz.tables import format_table


def main() -> None:
    server = TESTBED[4]
    print(f"characterizing {server.name} under {len(VARIANTS)} workloads\n")

    results = compare_workloads(server, list(VARIANTS.values()))

    rows = []
    for name, outcome in sorted(results.items(), key=lambda kv: -kv[1].ep):
        rows.append(
            [
                name,
                outcome.ep,
                outcome.overall_ee,
                f"{outcome.active_idle_w:.0f}",
                f"{outcome.power_w[-1]:.0f}",
                "/".join(f"{s:.0%}" for s in outcome.peak_spots),
            ]
        )
    print(format_table(
        ["workload", "EP", "EE (ops/W)", "idle W", "peak W", "peak spot"],
        rows,
        title="per-workload energy characterization",
    ))
    print(f"\nEP spread across workloads: {ep_spread(results):.3f}")

    # The normalized power curves, side by side.
    series = {}
    for name, outcome in results.items():
        peak = outcome.power_w[-1]
        series[name] = [
            (u, p / peak) for u, p in zip(outcome.utilization, outcome.power_w)
        ]
    series["ideal"] = [(u, u) for u in results["ssj"].utilization]
    print()
    print(line_chart(series, title="normalized power curves per workload"))

    print(
        "\nTakeaway: placement policies tuned on SPECpower curves should be\n"
        "re-characterized per application class before deployment -- the\n"
        "memory-bound workloads keep the platform busier per op and shift\n"
        "the efficiency-optimal operating point."
    )


if __name__ == "__main__":
    main()
