#!/usr/bin/env python3
"""Run the SPECpower-style benchmark simulator on a custom server.

Run with::

    python examples/ssj_run.py

Builds a server from individual components (CPUs with DVFS operating
points, DIMMs, disks, fans, PSU), runs the full graduated-load
benchmark under two governors, and compares the resulting FDRs --
including each run's energy proportionality.
"""

from repro.hwexp.perf_model import ServerThroughputProfile
from repro.power.components import SATA_SSD, FanPowerModel
from repro.power.cpu import CpuPowerModel, default_voltage_curve
from repro.power.governors import OndemandGovernor, PowersaveGovernor
from repro.power.memory import populate
from repro.power.psu import PsuModel
from repro.power.server import ServerPowerModel
from repro.ssj.load_levels import MeasurementPlan
from repro.ssj.runner import SsjRunner


def build_server() -> ServerPowerModel:
    """A two-socket 2015-class machine, component by component."""
    cpu = CpuPowerModel(
        tdp_w=90.0,
        cores=8,
        operating_points=default_voltage_curve(
            [1.2, 1.5, 1.8, 2.1, 2.4, 2.7], v_min=1.05, v_max=1.25
        ),
        static_fraction=0.25,
    )
    return ServerPowerModel(
        cpus=[cpu, cpu],
        memory=populate(64, "DDR4"),
        disks=[SATA_SSD, SATA_SSD],
        fans=FanPowerModel(base_w=9.0, max_w=32.0),
        psu=PsuModel(rated_w=460.0, peak_efficiency=0.94),
        motherboard_w=28.0,
    )


def main() -> None:
    server = build_server()
    profile = ServerThroughputProfile(
        ops_per_core_at_max=9500.0,
        max_frequency_ghz=2.7,
        compute_fraction=0.85,
        heap_demand_gb_per_core=3.0,
        memory_per_core_gb=4.0,
    )
    plan = MeasurementPlan(interval_s=5.0, ramp_s=1.0)

    print(f"server: {server.total_cores} cores, idle "
          f"{server.idle_wall_power_w():.0f} W, peak "
          f"{server.peak_wall_power_w():.0f} W\n")

    for governor in (OndemandGovernor(), PowersaveGovernor()):
        runner = SsjRunner(
            server=server, profile=profile, governor=governor, plan=plan
        )
        report = runner.run()
        print(f"--- governor: {governor.name} ---")
        print(report.to_text())
        print(f"peak-efficiency spot(s): "
              f"{[f'{s:.0%}' for s in report.peak_efficiency_spots(rtol=5e-3)]}\n")


if __name__ == "__main__":
    main()
