#!/usr/bin/env python3
"""Datacenter placement: EP-aware load placement vs. consolidation.

Run with::

    python examples/datacenter_placement.py

Implements Section V.C on a heterogeneous fleet drawn from the corpus:
build logical clusters by proportionality and working region, then
compare pack-to-full consolidation against EP-aware placement at a
range of demand levels and under a fixed power cap.
"""

from repro import Study
from repro.cluster import (
    build_logical_clusters,
    ep_aware_placement,
    max_throughput_under_cap,
    pack_to_full_placement,
)
from repro.cluster.regions import optimal_working_region
from repro.viz.tables import format_table


def main() -> None:
    study = Study()
    fleet = list(study.corpus.by_hw_year_range(2013, 2016))
    print(f"fleet: {len(fleet)} servers (hardware years 2013-2016)")

    # 1. Working regions: where should each server run?
    print("\nsample optimal working regions (EE within 5% of peak):")
    for server in sorted(fleet, key=lambda r: -r.ep)[:5]:
        region = optimal_working_region(server)
        print(f"  {server.model} (EP {server.ep:.2f}, peak at "
              f"{server.primary_peak_spot:.0%}): run in "
              f"[{region.low:.0%}, {region.high:.0%}]")

    # 2. Logical clusters per the Section V.C recipe.
    clusters = build_logical_clusters(fleet, min_size=3)
    print(f"\n{len(clusters)} logical clusters of 3+ servers:")
    for cluster in clusters:
        print(f"  EP band {cluster.ep_band}: {cluster.size} servers, "
              f"operate in [{cluster.region.low:.0%}, {cluster.region.high:.0%}]")

    # 3. Placement policies across demand levels.
    capacity = sum(
        level.ssj_ops
        for server in fleet
        for level in server.levels
        if level.target_load == 1.0
    )
    rows = []
    for share in (0.3, 0.5, 0.7):
        demand = share * capacity
        packed = pack_to_full_placement(fleet, demand)
        aware = ep_aware_placement(fleet, demand)
        saving = 1.0 - aware.total_power_w / packed.total_power_w
        rows.append([
            f"{share:.0%}",
            packed.servers_used,
            f"{packed.total_power_w:.0f}",
            aware.servers_used,
            f"{aware.total_power_w:.0f}",
            f"{saving:+.1%}",
        ])
    print("\n" + format_table(
        ["demand", "packed srv", "packed W", "aware srv", "aware W", "saving"],
        rows,
        title="pack-to-full vs. EP-aware placement",
    ))

    # 4. Throughput under a power cap.
    cap = 0.5 * pack_to_full_placement(fleet, capacity).total_power_w
    packed_cap = max_throughput_under_cap(fleet, cap, policy="pack-to-full")
    aware_cap = max_throughput_under_cap(fleet, cap, policy="ep-aware")
    gain = aware_cap.placed_ops / packed_cap.placed_ops - 1.0
    print(f"\nunder a {cap:.0f} W cap: pack-to-full places "
          f"{packed_cap.placed_ops:.3g} ops/s, EP-aware places "
          f"{aware_cap.placed_ops:.3g} ops/s ({gain:+.1%})")


if __name__ == "__main__":
    main()
