#!/usr/bin/env python3
"""Quickstart: generate the corpus, reproduce the headline findings.

Run with::

    python examples/quickstart.py

Generates the calibrated 477-server SPECpower corpus, computes the
paper's headline numbers, and prints three of its figures.
"""

from repro import Study


def main() -> None:
    study = Study()
    corpus = study.corpus

    print(f"corpus: {len(corpus)} published SPECpower results, "
          f"{corpus.hw_years()[0]}-{corpus.hw_years()[-1]}")

    # Headline metric: energy proportionality of one server.
    exemplar = max(corpus.by_hw_year(2016), key=lambda r: r.ep)
    print(f"\nbest 2016 server: EP {exemplar.ep:.2f}, "
          f"overall score {exemplar.overall_score:.0f} ops/W, "
          f"idle at {exemplar.idle_fraction:.0%} of peak power")

    # Three of the paper's artifacts.
    for figure_id in ("fig3", "fig16", "eq2"):
        result = study.figure(figure_id)
        print(f"\n=== {figure_id}: {result.title} ===")
        print(result.text)


if __name__ == "__main__":
    main()
