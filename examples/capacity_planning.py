#!/usr/bin/env python3
"""Capacity planning: don't buy by peak efficiency alone.

Run with::

    python examples/capacity_planning.py

The paper's Section I caution — "a server with high peak energy
efficiency is not essentially highly energy proportional" — turned into
a buying decision: size a homogeneous fleet of each 2016 candidate
model for a diurnal 5 Mops service and integrate a day of energy.
"""

from repro import Study
from repro.cluster.procurement import build_controlled_candidates, plan_procurement
from repro.cluster.trace import DemandTrace, diurnal_trace
from repro.viz.tables import format_table


def main() -> None:
    study = Study()
    # The controlled pair: identical platforms except one trades
    # proportionality for a higher headline (peak) efficiency.
    pair = build_controlled_candidates()
    pair_plan = plan_procurement(pair, 5e5, trace=diurnal_trace(noise=0.0))
    print(format_table(
        ["candidate", "EP", "peak EE", "kWh/day"],
        [[e.candidate.model, e.ep, f"{e.peak_ee:.1f}", e.daily_energy_kwh]
         for e in pair_plan.evaluations],
        title="controlled pair on the diurnal duty cycle",
    ))
    print(f"the peak-EE pick costs {pair_plan.naive_penalty:+.1%} daily "
          f"energy -- proportionality wins under fluctuating load.\n")

    candidates = sorted(
        study.corpus.by_hw_year(2016), key=lambda r: -r.overall_score
    )[:6]
    peak_demand = 5e6  # ops/s at the afternoon peak

    print(f"{len(candidates)} candidate 2016 models for a "
          f"{peak_demand:.0e} ops/s diurnal service\n")

    # The realistic duty cycle: a double-peaked day.
    plan = plan_procurement(candidates, peak_demand,
                            trace=diurnal_trace(noise=0.0))
    rows = [
        [e.candidate.result_id, e.ep, f"{e.peak_ee:.0f}",
         e.servers_needed, e.daily_energy_kwh]
        for e in plan.evaluations
    ]
    print(format_table(
        ["model", "EP", "peak EE", "servers", "kWh/day"],
        rows,
        title="ranked by daily energy on the diurnal duty cycle",
    ))
    # Sanity check the intuition on the controlled pair: at a flat
    # 100% duty cycle the naive criterion stops being wrong.
    flat = DemandTrace(times_h=(0.0, 12.0), demand_fraction=(1.0, 1.0))
    flat_plan = plan_procurement(pair, 5e5, trace=flat)
    print(f"\nat a flat 100% duty cycle the peak-EE pick costs only "
          f"{flat_plan.naive_penalty:+.1%} — proportionality matters "
          f"exactly when load fluctuates.")


if __name__ == "__main__":
    main()
